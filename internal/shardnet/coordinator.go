package shardnet

// Coordinator side of the shard service. Distribute assigns the run's
// shards across the configured workers (shard i starts on worker i%W,
// each worker handling one request at a time), retries transient
// failures with capped exponential backoff plus seeded jitter, and on a
// worker's final failure reassigns its pending shards to the survivors —
// or, when no workers remain, abandons them to local computation. Every
// accepted shard artifact is verified (frame checksum, schema version,
// dataset fingerprint, interval coverage) before it is stored through
// the ordinary fcache shard kind, so the subsequent merge run reads
// exactly what a single-process run would have computed. The invariant:
// for any worker count and any fault schedule, the merged result is
// byte-identical to a local run. Retry timing (the jitter Seed) can
// change how long a run takes, never its bytes.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

const (
	defaultTimeout     = 30 * time.Second
	defaultBackoffBase = 50 * time.Millisecond
	defaultBackoffCap  = 2 * time.Second
	// maxResponseBytes bounds /shard response frames read into memory.
	maxResponseBytes = 1 << 30
)

// Coordinator distributes shard computations across HTTP workers.
type Coordinator struct {
	// Workers are the worker base URLs ("http://host:port"). Bare
	// host:port is accepted.
	Workers []string
	// Timeout is the per-request deadline (0 = 30s).
	Timeout time.Duration
	// Retries is how many extra attempts each worker gets per shard
	// before it is declared dead (negative = 0).
	Retries int
	// BackoffBase / BackoffCap shape the exponential retry backoff
	// (0 = 50ms / 2s). Each retry waits base<<(attempt-1), capped, with
	// ±50% seeded jitter.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the backoff jitter only; it never affects result bytes.
	Seed int64
	// Transport overrides the HTTP transport (nil =
	// http.DefaultTransport). Tests and the CLI wrap it with *Faults.
	Transport http.RoundTripper
	// Metrics receives the rpc.* counters and the rpc.distribute span.
	Metrics *obs.Metrics
	// Logf receives per-event logging. Nil disables it.
	Logf func(string, ...any)
}

// DistributeStats summarizes one Distribute call.
type DistributeStats struct {
	// Shards is the total shard count of the run.
	Shards int
	// Remote / Local split the shards into worker-computed and
	// abandoned-to-local-computation.
	Remote, Local int
	// Retries counts same-worker re-attempts; Reassigned counts shards
	// moved from a dead worker to the survivor pool.
	Retries, Reassigned int
	// Timeouts counts attempts that hit the per-request deadline.
	Timeouts int
	// DeadWorkers is how many workers were declared dead.
	DeadWorkers int
	// Bytes is the total response frame bytes read.
	Bytes int64
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Coordinator) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return defaultTimeout
}

func (c *Coordinator) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 0
}

func (c *Coordinator) backoff(attempt int) time.Duration {
	base, cap := c.BackoffBase, c.BackoffCap
	if base <= 0 {
		base = defaultBackoffBase
	}
	if cap <= 0 {
		cap = defaultBackoffCap
	}
	d := base << (attempt - 1)
	if d > cap || d <= 0 {
		d = cap
	}
	return d
}

// permanentError marks a failure no retry can fix (version or dataset
// divergence); the worker is declared dead without further attempts.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// dispatcher is the shared scheduling state: per-worker queues, the
// orphan pool fed by dead workers, and completion accounting.
type dispatcher struct {
	mu          sync.Mutex
	cond        *sync.Cond
	queues      [][]int
	orphans     []int
	alive       []bool
	aliveCount  int
	outstanding int
	stats       DistributeStats
}

// next blocks until worker w has a shard to run, every shard is
// settled, or w is dead. ok reports whether a shard was claimed.
func (d *dispatcher) next(w int) (shard int, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if !d.alive[w] || d.outstanding == 0 {
			return 0, false
		}
		if q := d.queues[w]; len(q) > 0 {
			d.queues[w] = q[1:]
			return q[0], true
		}
		if len(d.orphans) > 0 {
			shard = d.orphans[0]
			d.orphans = d.orphans[1:]
			return shard, true
		}
		d.cond.Wait()
	}
}

// done settles one shard as worker-computed.
func (d *dispatcher) done(bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Remote++
	d.stats.Bytes += bytes
	d.outstanding--
	if d.outstanding == 0 {
		d.cond.Broadcast()
	}
}

// addStat mutates the in-flight stats under the dispatcher lock.
func (d *dispatcher) addStat(f func(*DistributeStats)) {
	d.mu.Lock()
	f(&d.stats)
	d.mu.Unlock()
}

// kill declares worker w dead while it holds shard. The shard and w's
// remaining queue move to the orphan pool when survivors exist;
// otherwise every unsettled shard is abandoned to local computation.
// Returns how many shards were reassigned and how many abandoned.
func (d *dispatcher) kill(w, shard int) (reassigned, abandoned int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.alive[w] = false
	d.aliveCount--
	d.stats.DeadWorkers++
	pending := append([]int{shard}, d.queues[w]...)
	d.queues[w] = nil
	if d.aliveCount > 0 {
		d.orphans = append(d.orphans, pending...)
		sort.Ints(d.orphans)
		reassigned = len(pending)
		d.stats.Reassigned += reassigned
	} else {
		pending = append(pending, d.orphans...)
		d.orphans = nil
		abandoned = len(pending)
		d.stats.Local += abandoned
		d.outstanding -= abandoned
	}
	d.cond.Broadcast()
	return reassigned, abandoned
}

// Distribute computes the cfg.Shard.Count shards of (reg, cfg) on the
// workers and stores every verified artifact in cfg.CacheDir. It returns
// once all shards are settled — computed remotely or left for the merge
// run to compute locally. A fully successful run leaves Local == 0; a
// run that lost every worker leaves Local == Shards. Either way the
// caller proceeds with core.Run unchanged.
func (c *Coordinator) Distribute(reg *bench.Registry, cfg core.Config) (*DistributeStats, error) {
	if len(c.Workers) == 0 {
		return nil, fmt.Errorf("shardnet: no workers configured")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CacheDir == "" {
		return nil, fmt.Errorf("shardnet: distributing shards needs a cache directory")
	}
	n := cfg.Shard.Count
	if n < 1 {
		n = 1
	}
	hash, err := core.DatasetHash(reg, cfg)
	if err != nil {
		return nil, err
	}
	workers := make([]string, len(c.Workers))
	for i, w := range c.Workers {
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		workers[i] = strings.TrimRight(w, "/")
	}

	span := c.Metrics.StartSpan("rpc.distribute").SetRows(n).SetWorkers(len(workers))
	d := &dispatcher{
		queues:      make([][]int, len(workers)),
		alive:       make([]bool, len(workers)),
		aliveCount:  len(workers),
		outstanding: n,
	}
	d.cond = sync.NewCond(&d.mu)
	d.stats.Shards = n
	for s := 0; s < n; s++ {
		w := s % len(workers)
		d.queues[w] = append(d.queues[w], s)
	}
	for i := range workers {
		d.alive[i] = true
	}

	client := &http.Client{Transport: c.Transport}
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Jitter RNG is per worker so backoff sequences are independent
			// of scheduling across workers.
			rng := trace.NewRNG(uint64(c.Seed) ^ trace.Hash64(uint64(w)))
			for {
				shard, ok := d.next(w)
				if !ok {
					return
				}
				nbytes, err := c.fetchShard(client, workers[w], reg, cfg, shard, n, hash, rng, d)
				if err == nil {
					d.done(nbytes)
					continue
				}
				c.logf("shardnet: worker %d (%s) failed shard %d/%d: %v", w, workers[w], shard, n, err)
				reassigned, abandoned := d.kill(w, shard)
				c.Metrics.Counter("rpc.reassigned").Add(int64(reassigned))
				if abandoned > 0 {
					c.logf("shardnet: no workers left, computing %d shard(s) locally", abandoned)
				}
				return
			}
		}(w)
	}
	wg.Wait()

	d.mu.Lock()
	stats := d.stats
	d.mu.Unlock()
	span.SetBytes(stats.Bytes).End()
	c.logf("shardnet: distributed %d/%d shard(s) across %d worker(s) (%d dead, %d reassigned, %d retries)",
		stats.Remote, stats.Shards, len(workers), stats.DeadWorkers, stats.Reassigned, stats.Retries)
	return &stats, nil
}

// fetchShard runs the full attempt loop for one shard against one
// worker: request, verify, store. A nil error means the artifact is in
// the cache (the int64 is the accepted frame's size); any error means
// the worker is spent for this run.
func (c *Coordinator) fetchShard(client *http.Client, workerURL string, reg *bench.Registry, cfg core.Config, shard, count int, hash uint64, rng *trace.RNG, d *dispatcher) (int64, error) {
	req := NewShardRequest(cfg, shard, count, hash)
	frame, err := req.MarshalBinary()
	if err != nil {
		return 0, err
	}
	shardCfg := cfg
	shardCfg.Shard = core.ShardSpec{Index: shard, Count: count}

	attempts := c.retries() + 1
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.Metrics.Counter("rpc.retries").Add(1)
			d.addStat(func(s *DistributeStats) { s.Retries++ })
			wait := c.backoff(attempt)
			// ±50% jitter: deterministic per (seed, worker, attempt), and
			// irrelevant to result bytes by construction.
			wait = wait/2 + time.Duration(rng.Uint64n(uint64(wait)))
			time.Sleep(wait)
		}
		nbytes, err := c.tryShard(client, workerURL, frame, reg, shardCfg, &req)
		if err == nil {
			return nbytes, nil
		}
		lastErr = err
		if errors.Is(err, context.DeadlineExceeded) {
			c.Metrics.Counter("rpc.timeouts").Add(1)
			d.addStat(func(s *DistributeStats) { s.Timeouts++ })
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return 0, err
		}
	}
	return 0, lastErr
}

// tryShard performs one request/verify/store attempt.
func (c *Coordinator) tryShard(client *http.Client, workerURL string, frame []byte, reg *bench.Registry, shardCfg core.Config, want *ShardRequest) (int64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout())
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+"/shard", bytes.NewReader(frame))
	if err != nil {
		return 0, err
	}
	httpReq.Header.Set("Content-Type", "application/octet-stream")
	c.Metrics.Counter("rpc.sent").Add(1)
	resp, err := client.Do(httpReq)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, &permanentError{fmt.Errorf("worker refused shard: %s", strings.TrimSpace(string(msg)))}
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("worker returned %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return 0, err
	}
	nbytes := int64(len(body))
	c.Metrics.Counter("rpc.bytes").Add(nbytes)
	var sr ShardResponse
	if err := sr.UnmarshalBinary(body); err != nil {
		return nbytes, err
	}
	if sr.ArtifactVersion != want.ArtifactVersion || sr.DatasetHash != want.DatasetHash {
		return nbytes, &permanentError{fmt.Errorf(
			"response for artifact %#x dataset %#x, want %#x/%#x", sr.ArtifactVersion, sr.DatasetHash, want.ArtifactVersion, want.DatasetHash)}
	}
	if sr.Index != want.Index || sr.Count != want.Count {
		return nbytes, fmt.Errorf("response for shard %d/%d, want %d/%d", sr.Index, sr.Count, want.Index, want.Count)
	}
	if _, err := core.PutShardArtifact(reg, shardCfg, sr.Payload); err != nil {
		return nbytes, err
	}
	return nbytes, nil
}
