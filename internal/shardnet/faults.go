package shardnet

// Deterministic fault injection for the shard transport. Faults wraps an
// http.RoundTripper and perturbs requests per scripted schedule: each
// worker host carries an ordered list of fault kinds, consumed one per
// request to that host. Scripts plus a seed fully determine behavior, so
// an integration test (or the verify.sh distributed gate) can inject a
// schedule and assert exact retry/reassignment counters — and, through
// the coordinator's invariant, byte-identical output.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// FaultKind enumerates the injectable transport faults.
type FaultKind int

const (
	// FaultNone passes the request through untouched.
	FaultNone FaultKind = iota
	// FaultDrop fails the request with a synthetic connection error.
	FaultDrop
	// FaultDelay delays the request a small seeded duration, then passes
	// it through.
	FaultDelay
	// FaultCorrupt passes the request through and flips one byte of the
	// response body.
	FaultCorrupt
	// Fault5xx synthesizes a 503 without reaching the worker.
	Fault5xx
	// FaultHang blocks until the request context is cancelled (the
	// caller's deadline), then fails with the context error.
	FaultHang
	// FaultDown marks the host permanently dead: this and every later
	// request to it fail with a connection error.
	FaultDown
)

var faultNames = map[FaultKind]string{
	FaultNone:    "none",
	FaultDrop:    "drop",
	FaultDelay:   "delay",
	FaultCorrupt: "corrupt",
	Fault5xx:     "5xx",
	FaultHang:    "hang",
	FaultDown:    "down",
}

func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// parseFaultKind maps a spec token to its kind.
func parseFaultKind(s string) (FaultKind, error) {
	for k, name := range faultNames {
		if name == s {
			return k, nil
		}
	}
	return FaultNone, fmt.Errorf("shardnet: unknown fault kind %q", s)
}

// Faults is a fault-injecting http.RoundTripper. The zero value is not
// usable; construct with NewFaults. Safe for concurrent use.
type Faults struct {
	next http.RoundTripper
	seed uint64

	mu      sync.Mutex
	scripts map[string][]FaultKind
	down    map[string]bool
	rngs    map[string]*trace.RNG
}

// NewFaults wraps next (nil means http.DefaultTransport) with an empty
// fault schedule. The seed drives only the delay durations, never which
// faults fire.
func NewFaults(next http.RoundTripper, seed int64) *Faults {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Faults{
		next:    next,
		seed:    uint64(seed),
		scripts: make(map[string][]FaultKind),
		down:    make(map[string]bool),
		rngs:    make(map[string]*trace.RNG),
	}
}

// Script appends faults to host's schedule (host as in url.URL.Host,
// e.g. "127.0.0.1:8421"). Requests to the host consume the schedule in
// order; once exhausted, requests pass through.
func (f *Faults) Script(host string, kinds ...FaultKind) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scripts[host] = append(f.scripts[host], kinds...)
}

// AddSpec parses a CLI fault spec and scripts it against hosts by index.
// The grammar is ';'-separated entries of "workerIndex:kind[,kind...]",
// e.g. "0:5xx,corrupt;2:down": worker 0's first request gets a 503, its
// second a corrupted body; worker 2 is down from the start.
func (f *Faults) AddSpec(spec string, hosts []string) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		idx, list, ok := strings.Cut(entry, ":")
		if !ok {
			return fmt.Errorf("shardnet: fault entry %q is not workerIndex:kinds", entry)
		}
		w, err := strconv.Atoi(strings.TrimSpace(idx))
		if err != nil || w < 0 || w >= len(hosts) {
			return fmt.Errorf("shardnet: fault entry %q: worker index out of range [0,%d)", entry, len(hosts))
		}
		var kinds []FaultKind
		for _, tok := range strings.Split(list, ",") {
			k, err := parseFaultKind(strings.TrimSpace(tok))
			if err != nil {
				return err
			}
			kinds = append(kinds, k)
		}
		f.Script(hosts[w], kinds...)
	}
	return nil
}

// take pops the next scheduled fault for host, honoring sticky death.
func (f *Faults) take(host string) FaultKind {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[host] {
		return FaultDrop
	}
	s := f.scripts[host]
	if len(s) == 0 {
		return FaultNone
	}
	k := s[0]
	f.scripts[host] = s[1:]
	if k == FaultDown {
		f.down[host] = true
	}
	return k
}

// delay returns the next seeded delay duration for host: deterministic
// per (seed, host, call ordinal) and small enough not to trip sane
// request deadlines.
func (f *Faults) delay(host string) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.rngs[host]
	if r == nil {
		r = trace.NewRNG(f.seed ^ trace.HashString(host))
		f.rngs[host] = r
	}
	return time.Duration(1+r.Uint64n(20)) * time.Millisecond
}

// RoundTrip implements http.RoundTripper.
func (f *Faults) RoundTrip(req *http.Request) (*http.Response, error) {
	switch k := f.take(req.URL.Host); k {
	case FaultNone:
		return f.next.RoundTrip(req)
	case FaultDrop, FaultDown:
		return nil, fmt.Errorf("shardnet: injected connection failure to %s", req.URL.Host)
	case FaultDelay:
		select {
		case <-time.After(f.delay(req.URL.Host)):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return f.next.RoundTrip(req)
	case Fault5xx:
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Body:    io.NopCloser(strings.NewReader("injected 503")),
			Request: req,
		}, nil
	case FaultCorrupt:
		resp, err := f.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if len(body) > 0 {
			// Flip a bit in the middle of the frame so the corruption lands
			// in the payload, not just a header field.
			body[len(body)/2] ^= 0x40
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		return resp, nil
	case FaultHang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	default:
		return nil, fmt.Errorf("shardnet: unhandled fault %v", k)
	}
}
