package shardnet

// Fuzz targets for the wire-frame decoders: frames arrive off the
// network, so arbitrary bytes must produce an error, never a panic or an
// oversized allocation, and accepted frames must round-trip.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func wireFuzzSeeds() map[string][][]byte {
	req := ShardRequest{
		ArtifactVersion: core.ShardArtifactVersion(),
		Index:           1, Count: 3,
		IntervalLength: 1500, SamplesPerBenchmark: 10, MaxIntervalsPerBenchmark: 12,
		SampleByBenchmark: true, Seed: 1, DatasetHash: 0x1234,
	}
	reqBytes, _ := req.MarshalBinary()
	resp := ShardResponse{
		ArtifactVersion: core.ShardArtifactVersion(),
		Index:           1, Count: 3, DatasetHash: 0x1234,
		Payload: []byte("payload"),
	}
	respBytes, _ := resp.MarshalBinary()
	// Response header claiming a giant payload over a tiny frame.
	lying := append([]byte(nil), respBytes[:respHeaderSize-8]...)
	lying = append(lying, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	return map[string][][]byte{
		"FuzzShardRequest":  {reqBytes, reqBytes[:10], {}},
		"FuzzShardResponse": {respBytes, respBytes[:respHeaderSize], lying, {}},
	}
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz. Run with WRITE_FUZZ_CORPUS=1 after changing the codecs.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	for target, entries := range wireFuzzSeeds() {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, data := range entries {
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func FuzzShardRequest(f *testing.F) {
	for _, s := range wireFuzzSeeds()["FuzzShardRequest"] {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var r ShardRequest
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var again ShardRequest
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again != r {
			t.Fatalf("round trip changed frame: %+v != %+v", again, r)
		}
	})
}

func FuzzShardResponse(f *testing.F) {
	for _, s := range wireFuzzSeeds()["FuzzShardResponse"] {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var r ShardResponse
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var again ShardResponse
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !bytes.Equal(again.Payload, r.Payload) {
			t.Fatal("round trip changed payload")
		}
	})
}
