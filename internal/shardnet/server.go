package shardnet

// Worker side of the shard service. A Server wraps a benchmark registry
// and exposes two endpoints: GET /healthz (liveness) and POST /shard,
// which decodes a ShardRequest frame, refuses it unless wire version,
// artifact schema version and dataset fingerprint all match the worker's
// own (409), computes the shard through core.EncodeShard, and streams the
// ShardResponse frame back. Workers are stateless by default; CacheDir
// opts into persisting computed shards locally across requests.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
)

// drainTimeout bounds how long Serve waits for in-flight /shard requests
// after its context is cancelled. A shard computation is minutes at the
// absolute worst; a worker asked to stop should finish the frame it is
// streaming, not abandon a coordinator mid-response.
const drainTimeout = 30 * time.Second

// maxRequestBytes bounds /shard request bodies; frames are fixed-size,
// so anything larger is garbage.
const maxRequestBytes = 4096

// Server serves shard computations for one benchmark registry.
type Server struct {
	// Reg is the worker's benchmark registry. Its dataset fingerprint
	// must match the coordinator's or requests are refused.
	Reg *bench.Registry
	// Workers is the per-request compute parallelism (0 = GOMAXPROCS).
	// It never influences shard bytes.
	Workers int
	// CacheDir, when set, persists computed shards across requests.
	CacheDir string
	// Metrics receives rpc.served / rpc.refused counters and per-request
	// spans. Nil disables instrumentation.
	Metrics *obs.Metrics
	// Logf receives request-level logging. Nil disables it.
	Logf func(string, ...any)
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Handler returns the HTTP handler serving /healthz and /shard.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/shard", s.handleShard)
	return mux
}

// handleShard serves one shard computation.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	s.Metrics.Counter("rpc.inflight").Add(1)
	defer s.Metrics.Counter("rpc.inflight").Add(-1)
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req ShardRequest
	if err := req.UnmarshalBinary(body); err != nil {
		s.refuse(w, http.StatusBadRequest, err)
		return
	}
	if req.ArtifactVersion != core.ShardArtifactVersion() {
		s.refuse(w, http.StatusConflict, fmt.Errorf(
			"shardnet: artifact version %#x, worker has %#x", req.ArtifactVersion, core.ShardArtifactVersion()))
		return
	}
	cfg := req.Config(s.Workers, s.CacheDir)
	localHash, err := core.DatasetHash(s.Reg, cfg)
	if err != nil {
		s.refuse(w, http.StatusBadRequest, err)
		return
	}
	if req.DatasetHash != localHash {
		s.refuse(w, http.StatusConflict, fmt.Errorf(
			"shardnet: dataset hash %#x, worker has %#x (registry or parameters diverge)", req.DatasetHash, localHash))
		return
	}
	span := s.Metrics.StartSpan("rpc.serve_shard").SetRows(req.Count).SetWorkers(s.Workers)
	payload, info, err := core.EncodeShard(s.Reg, cfg, s.Logf)
	if err != nil {
		span.End()
		s.refuse(w, http.StatusInternalServerError, err)
		return
	}
	resp := ShardResponse{
		ArtifactVersion: core.ShardArtifactVersion(),
		Index:           req.Index,
		Count:           req.Count,
		DatasetHash:     localHash,
		Payload:         payload,
	}
	frame, err := resp.MarshalBinary()
	if err != nil {
		span.End()
		s.refuse(w, http.StatusInternalServerError, err)
		return
	}
	span.SetBytes(int64(len(frame))).End()
	s.Metrics.Counter("rpc.served").Add(1)
	s.logf("shardnet: served shard %d/%d (%d unique intervals, %d bytes)",
		req.Index, req.Count, info.UniqueIntervals, len(frame))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(frame)))
	w.Write(frame)
}

// refuse reports an error response and counts it.
func (s *Server) refuse(w http.ResponseWriter, code int, err error) {
	s.Metrics.Counter("rpc.refused").Add(1)
	s.logf("shardnet: refused request (%d): %v", code, err)
	http.Error(w, err.Error(), code)
}

// Serve binds addr (host:port, port 0 for ephemeral), reports the bound
// address through ready (which may be nil), and serves until ctx is
// cancelled or the listener fails. On cancellation the server shuts
// down gracefully: the listener closes immediately, but requests
// already being served — a shard computation mid-stream — drain to
// completion (bounded by drainTimeout) before Serve returns. A clean
// context-driven shutdown returns nil; a listener failure returns its
// error.
func (s *Server) Serve(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		s.logf("shardnet: shutting down, draining in-flight requests")
		dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := srv.Shutdown(dctx)
		if serr := <-done; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		return err
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// ListenAndServe is Serve without cancellation: it serves until the
// listener fails. Kept for callers (and scripts) that manage worker
// lifetime by killing the process.
func (s *Server) ListenAndServe(addr string, ready func(net.Addr)) error {
	return s.Serve(context.Background(), addr, ready)
}
