package shardnet

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// testWorkers is the compute parallelism for both local and worker-side
// runs; SHARDNET_TEST_WORKERS overrides it so verify.sh can pin the
// distributed invariant at multiple worker counts.
func testWorkers(t *testing.T) int {
	t.Helper()
	v := os.Getenv("SHARDNET_TEST_WORKERS")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		t.Fatalf("SHARDNET_TEST_WORKERS=%q", v)
	}
	return n
}

// testRegistry builds a small registry with two clearly distinct suites
// (the same shape core's unit tests use).
func testRegistry(t *testing.T) *bench.Registry {
	t.Helper()
	mk := func(name string, suite bench.Suite, intervals int, phases ...bench.Phase) *bench.Benchmark {
		return &bench.Benchmark{Name: name, Suite: suite, PaperIntervals: intervals, Phases: phases}
	}
	serial := func(name string) trace.PhaseBehavior {
		return trace.PhaseBehavior{
			Name: name, Mix: trace.BaseMix(), CodeSize: 800,
			Branch: trace.BranchSpec{TakenBias: 0.5, PatternPeriod: 0},
			Reg:    trace.RegDepSpec{MeanDepDist: 2, AvgSrcRegs: 1.4, WriteFraction: 0.7},
			Loads:  []trace.AccessPattern{{Kind: trace.PatternRandom, Weight: 1, Region: 1 << 22}},
			Stores: []trace.AccessPattern{{Kind: trace.PatternRandom, Weight: 1, Region: 1 << 20}},
			Jitter: 0.05,
		}
	}
	stream := func(name string) trace.PhaseBehavior {
		return trace.PhaseBehavior{
			Name: name, Mix: trace.FPBaseMix(), CodeSize: 800,
			Branch: trace.BranchSpec{TakenBias: 0.95, PatternPeriod: 32, NoiseLevel: 0.01},
			Reg:    trace.RegDepSpec{MeanDepDist: 20, AvgSrcRegs: 2, WriteFraction: 0.9},
			Loads:  []trace.AccessPattern{{Kind: trace.PatternStride, Weight: 1, Region: 1 << 22, Stride: 8}},
			Stores: []trace.AccessPattern{{Kind: trace.PatternStride, Weight: 1, Region: 1 << 20, Stride: 8}},
			Jitter: 0.05,
		}
	}
	reg, err := bench.NewRegistry([]*bench.Benchmark{
		mk("s1", "SuiteA", 100, bench.Phase{Weight: 1, Behavior: serial("s1/p")}),
		mk("s2", "SuiteA", 200, bench.Phase{Weight: 0.5, Behavior: serial("s2/a")},
			bench.Phase{Weight: 0.5, Behavior: stream("s2/b")}),
		mk("f1", "SuiteB", 100, bench.Phase{Weight: 1, Behavior: stream("f1/p")}),
		mk("f2", "SuiteB", 300, bench.Phase{Weight: 1, Behavior: stream("f2/p")}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func testConfig(t *testing.T) core.Config {
	cfg := core.TestConfig()
	cfg.IntervalLength = 1500
	cfg.SamplesPerBenchmark = 10
	cfg.MaxIntervalsPerBenchmark = 12
	cfg.NumClusters = 6
	cfg.NumProminent = 6
	cfg.Workers = testWorkers(t)
	return cfg
}

// plainExport runs the single-process pipeline and returns the exported
// JSON — the reference bytes every distributed cell must reproduce.
func plainExport(t *testing.T, reg *bench.Registry, cfg core.Config) []byte {
	t.Helper()
	res, err := core.Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startWorkers starts n shard servers over reg and returns their base
// URLs and hosts (for fault scripts), cleaned up with the test.
func startWorkers(t *testing.T, reg *bench.Registry, n, compute int) (urls, hosts []string) {
	t.Helper()
	for i := 0; i < n; i++ {
		srv := &Server{Reg: reg, Workers: compute}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		hosts = append(hosts, strings.TrimPrefix(ts.URL, "http://"))
	}
	return urls, hosts
}

// distributedExport runs Distribute into a fresh cache, then the merge
// run over it, returning the exported JSON and the distribution stats.
func distributedExport(t *testing.T, reg *bench.Registry, cfg core.Config, shards int, coord *Coordinator) ([]byte, *DistributeStats) {
	t.Helper()
	cfg.CacheDir = t.TempDir()
	cfg.Shard = core.ShardSpec{Index: 0, Count: shards}
	stats, err := coord.Distribute(reg, cfg)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	res, err := core.Run(reg, cfg, nil)
	if err != nil {
		t.Fatalf("merge run: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats
}

// TestFaultMatrixByteIdentical is the distributed layer's load-bearing
// invariant: for every fault schedule that leaves >= 0 workers alive —
// transient 5xx, dropped connections, injected latency, corrupted
// frames, hangs until deadline, and 0..W dead workers — the merged
// result is byte-identical to the single-process run, and the retry /
// reassignment counters match exactly what the schedule implies.
func TestFaultMatrixByteIdentical(t *testing.T) {
	reg := testRegistry(t)
	cfg := testConfig(t)
	want := plainExport(t, reg, cfg)
	const shards, nWorkers = 6, 3

	cells := []struct {
		name    string
		faults  map[int][]FaultKind // worker index -> script
		timeout time.Duration       // 0: default
		// expected accounting
		retries, reassigned, timeouts, dead, local int
	}{
		{name: "clean"},
		{name: "5xx-once", faults: map[int][]FaultKind{0: {Fault5xx}}, retries: 1},
		{name: "drop-once", faults: map[int][]FaultKind{1: {FaultDrop}}, retries: 1},
		{name: "delay", faults: map[int][]FaultKind{0: {FaultDelay}, 2: {FaultDelay}}},
		{name: "corrupt-once", faults: map[int][]FaultKind{2: {FaultCorrupt}}, retries: 1},
		{name: "hang-once", faults: map[int][]FaultKind{0: {FaultHang}},
			timeout: 750 * time.Millisecond, retries: 1, timeouts: 1},
		{name: "one-down", faults: map[int][]FaultKind{2: {FaultDown}},
			retries: 2, reassigned: 2, dead: 1},
		{name: "two-down", faults: map[int][]FaultKind{1: {FaultDown}, 2: {FaultDown}},
			retries: 4, reassigned: 4, dead: 2},
		{name: "all-down", faults: map[int][]FaultKind{0: {FaultDown}, 1: {FaultDown}, 2: {FaultDown}},
			retries: 6, reassigned: 4, dead: 3, local: 6},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			urls, hosts := startWorkers(t, reg, nWorkers, cfg.Workers)
			faults := NewFaults(nil, 7)
			for w, script := range cell.faults {
				faults.Script(hosts[w], script...)
			}
			m := obs.New()
			coord := &Coordinator{
				Workers:     urls,
				Timeout:     cell.timeout,
				Retries:     2,
				BackoffBase: time.Millisecond,
				BackoffCap:  5 * time.Millisecond,
				Seed:        42,
				Transport:   faults,
				Metrics:     m,
			}
			got, stats := distributedExport(t, reg, cfg, shards, coord)
			if !bytes.Equal(got, want) {
				t.Errorf("distributed export differs from plain run (%d vs %d bytes)", len(got), len(want))
			}
			if stats.Retries != cell.retries || stats.Reassigned != cell.reassigned ||
				stats.Timeouts != cell.timeouts || stats.DeadWorkers != cell.dead || stats.Local != cell.local {
				t.Errorf("stats = %+v, want retries=%d reassigned=%d timeouts=%d dead=%d local=%d",
					stats, cell.retries, cell.reassigned, cell.timeouts, cell.dead, cell.local)
			}
			if remote := stats.Shards - cell.local; stats.Remote != remote {
				t.Errorf("remote = %d, want %d", stats.Remote, remote)
			}
			if got := m.Counter("rpc.retries").Value(); got != int64(cell.retries) {
				t.Errorf("rpc.retries = %d, want %d", got, cell.retries)
			}
			if got := m.Counter("rpc.reassigned").Value(); got != int64(cell.reassigned) {
				t.Errorf("rpc.reassigned = %d, want %d", got, cell.reassigned)
			}
			// Every remote success is one final attempt, every dead worker
			// failed exactly one fetch's initial attempt, and every retry is
			// one more attempt.
			wantSent := int64((shards - cell.local) + cell.dead + cell.retries)
			if got := m.Counter("rpc.sent").Value(); got != wantSent {
				t.Errorf("rpc.sent = %d, want %d", got, wantSent)
			}
		})
	}
}

// killingTransport closes a target server immediately after its first
// successful /shard response, modeling a worker dying mid-run.
type killingTransport struct {
	host   string
	server *httptest.Server
	once   sync.Once
}

func (k *killingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err == nil && resp.StatusCode == http.StatusOK && req.URL.Host == k.host {
		// Drain and replay the body so the caller still sees the full
		// response, then take the server down.
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		k.once.Do(k.server.Close)
	}
	return resp, err
}

// TestWorkerDeathMidRun kills one worker after it served its first
// shard; its remaining shard must be reassigned and the result must
// still match the plain run byte for byte.
func TestWorkerDeathMidRun(t *testing.T) {
	reg := testRegistry(t)
	cfg := testConfig(t)
	want := plainExport(t, reg, cfg)

	srv := &Server{Reg: reg, Workers: cfg.Workers}
	dying := httptest.NewServer(srv.Handler())
	t.Cleanup(dying.Close)
	urls, _ := startWorkers(t, reg, 2, cfg.Workers)
	urls = append([]string{dying.URL}, urls...)

	m := obs.New()
	coord := &Coordinator{
		Workers:     urls,
		Retries:     2,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		Transport:   &killingTransport{host: strings.TrimPrefix(dying.URL, "http://"), server: dying},
		Metrics:     m,
	}
	got, stats := distributedExport(t, reg, cfg, 6, coord)
	if !bytes.Equal(got, want) {
		t.Errorf("distributed export differs from plain run")
	}
	if stats.DeadWorkers != 1 || stats.Reassigned != 1 || stats.Retries != 2 || stats.Local != 0 {
		t.Errorf("stats = %+v, want 1 dead, 1 reassigned, 2 retries, 0 local", stats)
	}
}

// TestDatasetMismatchFallsBackLocal points the coordinator at a worker
// built over a different registry: every request must be refused
// permanently (no retries), and the run must gracefully degrade to
// local computation with an unchanged result.
func TestDatasetMismatchFallsBackLocal(t *testing.T) {
	reg := testRegistry(t)
	cfg := testConfig(t)
	want := plainExport(t, reg, cfg)

	other, err := bench.NewRegistry((testRegistry(t)).All()[:2])
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Reg: other, Workers: cfg.Workers}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	m := obs.New()
	coord := &Coordinator{Workers: []string{ts.URL}, Retries: 2, Metrics: m}
	got, stats := distributedExport(t, reg, cfg, 3, coord)
	if !bytes.Equal(got, want) {
		t.Errorf("fallback export differs from plain run")
	}
	if stats.Retries != 0 || stats.DeadWorkers != 1 || stats.Local != 3 || stats.Remote != 0 {
		t.Errorf("stats = %+v, want 0 retries, 1 dead, 3 local, 0 remote", stats)
	}
	if refused := m.Counter("rpc.sent").Value(); refused != 1 {
		t.Errorf("rpc.sent = %d, want 1 (permanent refusal, no retry)", refused)
	}
}

// TestJitterSeedDoesNotChangeBytes pins that retry pacing — different
// jitter seeds and backoff shapes under the same fault schedule — never
// leaks into the merged output.
func TestJitterSeedDoesNotChangeBytes(t *testing.T) {
	reg := testRegistry(t)
	cfg := testConfig(t)
	want := plainExport(t, reg, cfg)

	var exports [][]byte
	for i, seed := range []int64{1, 999} {
		urls, hosts := startWorkers(t, reg, 3, cfg.Workers)
		faults := NewFaults(nil, 7)
		faults.Script(hosts[0], Fault5xx)
		faults.Script(hosts[1], FaultDrop)
		coord := &Coordinator{
			Workers:     urls,
			Retries:     2,
			Seed:        seed,
			BackoffBase: time.Duration(i+1) * time.Millisecond,
			BackoffCap:  time.Duration(i+1) * 4 * time.Millisecond,
			Transport:   faults,
		}
		got, _ := distributedExport(t, reg, cfg, 6, coord)
		exports = append(exports, got)
	}
	for i, got := range exports {
		if !bytes.Equal(got, want) {
			t.Errorf("export %d differs from plain run", i)
		}
	}
}

// TestServeHealthz pins the liveness endpoint.
func TestServeHealthz(t *testing.T) {
	srv := &Server{Reg: testRegistry(t)}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestServerRefusals pins the refusal statuses: undecodable frames are
// 400, version skew is 409, and GET is 405.
func TestServerRefusals(t *testing.T) {
	reg := testRegistry(t)
	cfg := testConfig(t)
	srv := &Server{Reg: reg, Workers: cfg.Workers}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/shard", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post([]byte("garbage")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage frame: %d, want 400", resp.StatusCode)
	}
	hash, err := core.DatasetHash(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := NewShardRequest(cfg, 0, 2, hash)
	req.ArtifactVersion++
	frame, err := req.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if resp := post(frame); resp.StatusCode != http.StatusConflict {
		t.Errorf("version skew: %d, want 409", resp.StatusCode)
	}
	req = NewShardRequest(cfg, 0, 2, hash^1)
	frame, err = req.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if resp := post(frame); resp.StatusCode != http.StatusConflict {
		t.Errorf("dataset skew: %d, want 409", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/shard")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /shard: %d, want 405", resp.StatusCode)
	}
}

// TestWireRoundTrip pins both frame codecs and their tamper detection.
func TestWireRoundTrip(t *testing.T) {
	req := ShardRequest{
		ArtifactVersion: core.ShardArtifactVersion(),
		Index:           2, Count: 5,
		IntervalLength: 1500, SamplesPerBenchmark: 10, MaxIntervalsPerBenchmark: 12,
		SampleByBenchmark: true, Seed: -3, DatasetHash: 0xdeadbeefcafef00d,
	}
	frame, err := req.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got ShardRequest
	if err := got.UnmarshalBinary(frame); err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("request round trip: %+v != %+v", got, req)
	}
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 1
		if err := new(ShardRequest).UnmarshalBinary(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}

	resp := ShardResponse{
		ArtifactVersion: 7, Index: 1, Count: 4,
		DatasetHash: 99, Payload: []byte("shard bytes"),
	}
	rframe, err := resp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var rgot ShardResponse
	if err := rgot.UnmarshalBinary(rframe); err != nil {
		t.Fatal(err)
	}
	if rgot.ArtifactVersion != resp.ArtifactVersion || rgot.Index != resp.Index ||
		rgot.Count != resp.Count || rgot.DatasetHash != resp.DatasetHash ||
		!bytes.Equal(rgot.Payload, resp.Payload) {
		t.Fatalf("response round trip: %+v != %+v", rgot, resp)
	}
	for i := range rframe {
		bad := append([]byte(nil), rframe...)
		bad[i] ^= 1
		if err := new(ShardResponse).UnmarshalBinary(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	if err := new(ShardResponse).UnmarshalBinary(rframe[:len(rframe)-3]); err == nil {
		t.Fatal("truncated response accepted")
	}
}

// TestFaultSpecParsing pins the CLI fault-spec grammar.
func TestFaultSpecParsing(t *testing.T) {
	hosts := []string{"a:1", "b:2", "c:3"}
	f := NewFaults(nil, 1)
	if err := f.AddSpec("0:5xx,corrupt;2:down", hosts); err != nil {
		t.Fatal(err)
	}
	if got := f.take("a:1"); got != Fault5xx {
		t.Errorf("a:1 first = %v, want 5xx", got)
	}
	if got := f.take("a:1"); got != FaultCorrupt {
		t.Errorf("a:1 second = %v, want corrupt", got)
	}
	if got := f.take("a:1"); got != FaultNone {
		t.Errorf("a:1 third = %v, want none", got)
	}
	if got := f.take("b:2"); got != FaultNone {
		t.Errorf("b:2 = %v, want none", got)
	}
	for i := 0; i < 3; i++ {
		if got := f.take("c:3"); got == FaultNone {
			t.Errorf("c:3 call %d = none, want sticky down", i)
		}
	}
	for _, bad := range []string{"9:drop", "x:drop", "0:bogus", "nope"} {
		if err := NewFaults(nil, 1).AddSpec(bad, hosts); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
