package shardnet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestServeGracefulDrain is the shutdown regression test: cancelling a
// worker's context while a /shard request is in flight must drain the
// request — the caller still receives a complete, valid response frame —
// and Serve must return nil (a clean shutdown, not a listener error).
func TestServeGracefulDrain(t *testing.T) {
	reg := testRegistry(t)
	cfg := testConfig(t)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	hash, err := core.DatasetHash(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}

	m := obs.New()
	srv := &Server{Reg: reg, Workers: cfg.Workers, Metrics: m}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- srv.Serve(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-serveErr:
		t.Fatalf("Serve exited before ready: %v", err)
	}

	req := NewShardRequest(cfg, 0, 2, hash)
	frame, err := req.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		body   []byte
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(fmt.Sprintf("http://%s/shard", addr), "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		resCh <- result{status: resp.StatusCode, body: body, err: err}
	}()

	// Cancel the moment the request is actually being served, so the
	// shutdown genuinely races the in-flight computation. A fast shard
	// can finish between polls of the gauge — if the response has
	// already landed, the race simply didn't materialize this run, and
	// the shutdown must still be clean.
	inflight := m.Counter("rpc.inflight")
	deadline := time.Now().Add(10 * time.Second)
observe:
	for inflight.Value() == 0 {
		select {
		case res := <-resCh:
			resCh <- res
			break observe
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(200 * time.Microsecond)
	}
	cancel()

	res := <-resCh
	if res.err != nil {
		t.Fatalf("draining worker dropped the request: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("status = %d, body %q", res.status, res.body)
	}
	var shardResp ShardResponse
	if err := shardResp.UnmarshalBinary(res.body); err != nil {
		t.Fatalf("draining worker returned an invalid frame: %v", err)
	}
	if shardResp.DatasetHash != hash || shardResp.Index != 0 || shardResp.Count != 2 {
		t.Fatalf("frame mismatch: %+v", shardResp)
	}
	if len(shardResp.Payload) == 0 {
		t.Fatal("drained response has an empty shard payload")
	}

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if got := inflight.Value(); got != 0 {
		t.Fatalf("rpc.inflight = %d after drain, want 0", got)
	}

	// The listener is closed: a new request must be refused at dial.
	if _, err := http.Post(fmt.Sprintf("http://%s/shard", addr), "application/octet-stream", bytes.NewReader(frame)); err == nil {
		t.Fatal("post-shutdown request was accepted")
	}
}

// TestServeListenerError: an unusable address fails fast with an error,
// not a hang.
func TestServeListenerError(t *testing.T) {
	srv := &Server{Reg: testRegistry(t)}
	if err := srv.Serve(context.Background(), "256.0.0.1:bogus", nil); err == nil {
		t.Fatal("bogus address should fail to bind")
	}
}
