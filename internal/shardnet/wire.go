package shardnet

// Wire frames for the shard RPC. Both directions use a fixed-layout
// little-endian binary encoding with a leading magic, an explicit wire
// version, and a trailing FNV-1a checksum over everything that precedes
// it, so a frame damaged anywhere in flight — truncated, bit-flipped,
// served by the wrong endpoint — is rejected by the decoder rather than
// interpreted. Decoders return errors, never panic, on arbitrary bytes
// (pinned by the fuzz targets in fuzz_test.go).

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

const (
	// WireVersion versions the frame layout itself. Bump on any layout
	// change; both ends refuse mismatched frames.
	WireVersion = 1

	reqMagic  uint32 = 0x534e5131 // "SNQ1"
	respMagic uint32 = 0x534e5031 // "SNP1"

	// reqFrameSize is the fixed encoded size of a ShardRequest.
	reqFrameSize = 4 + 2 + 2 + 4 + 4 + 4 + 4 + 4 + 4 + 4 + 8 + 8 + 8
	// respHeaderSize is the fixed prefix of a ShardResponse before the
	// payload; the trailing checksum adds 8 more bytes after it.
	respHeaderSize = 4 + 2 + 2 + 4 + 4 + 4 + 8 + 8
)

// fnv1a is the 64-bit FNV-1a checksum of b (the same construction the
// fcache entry format uses).
func fnv1a(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// ShardRequest asks a worker to characterize shard Index/Count of the
// dataset described by the sampling parameters. DatasetHash fingerprints
// the coordinator's registry + parameters (core.DatasetHash); a worker
// whose own fingerprint differs must refuse rather than compute a shard
// of a different dataset.
type ShardRequest struct {
	// ArtifactVersion is the coordinator's core.ShardArtifactVersion.
	ArtifactVersion uint32
	// Index / Count select the shard.
	Index, Count int
	// IntervalLength, SamplesPerBenchmark, MaxIntervalsPerBenchmark and
	// SampleByBenchmark are the dataset-shaping core.Config parameters.
	IntervalLength           int
	SamplesPerBenchmark      int
	MaxIntervalsPerBenchmark int
	SampleByBenchmark        bool
	// Seed is the pipeline seed.
	Seed int64
	// DatasetHash is core.DatasetHash(reg, cfg) on the coordinator.
	DatasetHash uint64
}

// NewShardRequest builds the request for shard (index, count) of a
// validated coordinator configuration.
func NewShardRequest(cfg core.Config, index, count int, datasetHash uint64) ShardRequest {
	return ShardRequest{
		ArtifactVersion:          core.ShardArtifactVersion(),
		Index:                    index,
		Count:                    count,
		IntervalLength:           cfg.IntervalLength,
		SamplesPerBenchmark:      cfg.SamplesPerBenchmark,
		MaxIntervalsPerBenchmark: cfg.MaxIntervalsPerBenchmark,
		SampleByBenchmark:        cfg.SampleByBenchmark,
		Seed:                     cfg.Seed,
		DatasetHash:              datasetHash,
	}
}

// Config reconstructs the worker-side pipeline configuration: the wire's
// dataset parameters plus the worker's own execution knobs (parallelism,
// local cache). Worker knobs are deliberately excluded from the dataset
// identity — every shard is worker-count and cache-state independent.
func (r *ShardRequest) Config(workers int, cacheDir string) core.Config {
	return core.Config{
		IntervalLength:           r.IntervalLength,
		SamplesPerBenchmark:      r.SamplesPerBenchmark,
		MaxIntervalsPerBenchmark: r.MaxIntervalsPerBenchmark,
		SampleByBenchmark:        r.SampleByBenchmark,
		Seed:                     r.Seed,
		Workers:                  workers,
		CacheDir:                 cacheDir,
		Shard:                    core.ShardSpec{Index: r.Index, Count: r.Count},
	}
}

// MarshalBinary encodes the request frame (encoding.BinaryMarshaler).
func (r *ShardRequest) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, reqFrameSize)
	le := binary.LittleEndian
	buf = le.AppendUint32(buf, reqMagic)
	buf = le.AppendUint16(buf, WireVersion)
	buf = le.AppendUint16(buf, 0)
	buf = le.AppendUint32(buf, r.ArtifactVersion)
	buf = le.AppendUint32(buf, uint32(r.Index))
	buf = le.AppendUint32(buf, uint32(r.Count))
	buf = le.AppendUint32(buf, uint32(r.IntervalLength))
	buf = le.AppendUint32(buf, uint32(r.SamplesPerBenchmark))
	buf = le.AppendUint32(buf, uint32(r.MaxIntervalsPerBenchmark))
	var sampled uint32
	if r.SampleByBenchmark {
		sampled = 1
	}
	buf = le.AppendUint32(buf, sampled)
	buf = le.AppendUint64(buf, uint64(r.Seed))
	buf = le.AppendUint64(buf, r.DatasetHash)
	buf = le.AppendUint64(buf, fnv1a(buf))
	return buf, nil
}

// UnmarshalBinary decodes and validates a request frame
// (encoding.BinaryUnmarshaler).
func (r *ShardRequest) UnmarshalBinary(data []byte) error {
	le := binary.LittleEndian
	if len(data) != reqFrameSize {
		return fmt.Errorf("shardnet: request frame is %d bytes, want %d", len(data), reqFrameSize)
	}
	if le.Uint32(data) != reqMagic {
		return fmt.Errorf("shardnet: bad request magic")
	}
	if v := le.Uint16(data[4:]); v != WireVersion {
		return fmt.Errorf("shardnet: request wire version %d, want %d", v, WireVersion)
	}
	if got, want := le.Uint64(data[reqFrameSize-8:]), fnv1a(data[:reqFrameSize-8]); got != want {
		return fmt.Errorf("shardnet: request checksum mismatch")
	}
	r.ArtifactVersion = le.Uint32(data[8:])
	r.Index = int(le.Uint32(data[12:]))
	r.Count = int(le.Uint32(data[16:]))
	r.IntervalLength = int(le.Uint32(data[20:]))
	r.SamplesPerBenchmark = int(le.Uint32(data[24:]))
	r.MaxIntervalsPerBenchmark = int(le.Uint32(data[28:]))
	r.SampleByBenchmark = le.Uint32(data[32:]) != 0
	r.Seed = int64(le.Uint64(data[36:]))
	r.DatasetHash = le.Uint64(data[44:])
	if r.Count < 1 || r.Index < 0 || r.Index >= r.Count {
		return fmt.Errorf("shardnet: request for shard %d/%d", r.Index, r.Count)
	}
	return nil
}

// ShardResponse carries one computed shard artifact back to the
// coordinator. The echoes (version, shard coordinates, dataset hash) let
// the coordinator verify the response answers the request it sent before
// the payload is trusted.
type ShardResponse struct {
	// ArtifactVersion is the worker's core.ShardArtifactVersion.
	ArtifactVersion uint32
	// Index / Count echo the computed shard.
	Index, Count int
	// DatasetHash echoes the dataset fingerprint the shard belongs to.
	DatasetHash uint64
	// Payload is the encoded shard artifact (core shard codec).
	Payload []byte
}

// MarshalBinary encodes the response frame (encoding.BinaryMarshaler).
func (r *ShardResponse) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, respHeaderSize+len(r.Payload)+8)
	le := binary.LittleEndian
	buf = le.AppendUint32(buf, respMagic)
	buf = le.AppendUint16(buf, WireVersion)
	buf = le.AppendUint16(buf, 0)
	buf = le.AppendUint32(buf, r.ArtifactVersion)
	buf = le.AppendUint32(buf, uint32(r.Index))
	buf = le.AppendUint32(buf, uint32(r.Count))
	buf = le.AppendUint64(buf, r.DatasetHash)
	buf = le.AppendUint64(buf, uint64(len(r.Payload)))
	buf = append(buf, r.Payload...)
	buf = le.AppendUint64(buf, fnv1a(buf))
	return buf, nil
}

// UnmarshalBinary decodes and validates a response frame
// (encoding.BinaryUnmarshaler). The payload is copied out of data.
func (r *ShardResponse) UnmarshalBinary(data []byte) error {
	le := binary.LittleEndian
	if len(data) < respHeaderSize+8 {
		return fmt.Errorf("shardnet: response frame truncated (%d bytes)", len(data))
	}
	if le.Uint32(data) != respMagic {
		return fmt.Errorf("shardnet: bad response magic")
	}
	if v := le.Uint16(data[4:]); v != WireVersion {
		return fmt.Errorf("shardnet: response wire version %d, want %d", v, WireVersion)
	}
	n := le.Uint64(data[respHeaderSize-8:])
	if n != uint64(len(data)-respHeaderSize-8) {
		return fmt.Errorf("shardnet: response payload length %d does not match frame size %d", n, len(data))
	}
	if got, want := le.Uint64(data[len(data)-8:]), fnv1a(data[:len(data)-8]); got != want {
		return fmt.Errorf("shardnet: response checksum mismatch")
	}
	r.ArtifactVersion = le.Uint32(data[8:])
	r.Index = int(le.Uint32(data[12:]))
	r.Count = int(le.Uint32(data[16:]))
	r.DatasetHash = le.Uint64(data[20:])
	r.Payload = append([]byte(nil), data[respHeaderSize:respHeaderSize+int(n)]...)
	return nil
}
