package stats

import "testing"

// TestProjectionDrift pins the frozen-basis drift detector: rows drawn
// from the basis' own training distribution reconstruct almost exactly
// (tiny drift), rows orthogonal to the retained subspace do not (large
// drift), and no rows means no drift.
func TestProjectionDrift(t *testing.T) {
	// Training data spread along two latent directions in 6-D, so the
	// retained components capture it nearly perfectly.
	m := NewMatrix(40, 6)
	for i := 0; i < m.Rows; i++ {
		a, b := float64(i)/4, float64(i%7)-3
		row := m.Row(i)
		for j := range row {
			row[j] = a*float64(j+1) + b*float64((j*j)%5)
		}
	}
	pca, err := ComputePCA(m, true)
	if err != nil {
		t.Fatal(err)
	}
	// The data is rank 2 by construction, so two components reconstruct
	// it exactly (up to float64 noise).
	k := 2

	rows := []int{0, 5, 17, 39}
	drift, err := pca.ProjectionDrift(m, rows, k)
	if err != nil {
		t.Fatal(err)
	}
	if drift > 0.05 {
		t.Fatalf("in-distribution drift %g, want near 0", drift)
	}

	// Perturb one coordinate far outside the training pattern: the
	// reconstruction must miss by much more.
	weird := NewMatrix(m.Rows, m.Cols)
	copy(weird.Data, m.Data)
	for _, r := range rows {
		row := weird.Row(r)
		for j := range row {
			if j%2 == 0 {
				row[j] = -row[j] + 50
			}
		}
	}
	outDrift, err := pca.ProjectionDrift(weird, rows, k)
	if err != nil {
		t.Fatal(err)
	}
	if outDrift <= drift {
		t.Fatalf("out-of-distribution drift %g not above in-distribution %g", outDrift, drift)
	}

	zero, err := pca.ProjectionDrift(m, nil, k)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Fatalf("drift over no rows = %g, want 0", zero)
	}

	if _, err := pca.ProjectionDrift(m, []int{m.Rows}, k); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}
