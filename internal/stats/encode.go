package stats

// Binary serialization for the persistable analysis artifacts. Every
// float64 round-trips through its IEEE-754 bits, so a decoded matrix or
// PCA model is bit-identical to the encoded one — the property the
// pipeline's resume guarantee rests on. Integrity (checksums, truncation
// detection) is the storage layer's job (internal/fcache); these decoders
// only have to reject structurally inconsistent payloads.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// matrixEncodingSize is the encoded size of a matrix: rows, cols (u32
// each) plus the row-major float64 data.
func matrixEncodingSize(m *Matrix) int { return 8 + 8*len(m.Data) }

// AppendBinary appends m's encoding to buf and returns the extended
// slice, for callers composing a matrix into a larger artifact.
func (m *Matrix) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Cols))
	for _, v := range m.Data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// MarshalBinary encodes the matrix (encoding.BinaryMarshaler).
func (m *Matrix) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(make([]byte, 0, matrixEncodingSize(m))), nil
}

// DecodeMatrix consumes one encoded matrix from the front of buf and
// returns it with the remaining bytes, for callers decoding composed
// artifacts.
func DecodeMatrix(buf []byte) (*Matrix, []byte, error) {
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("stats: matrix header truncated (%d bytes)", len(buf))
	}
	rows := int(binary.LittleEndian.Uint32(buf))
	cols := int(binary.LittleEndian.Uint32(buf[4:]))
	// Bound rows*cols by the bytes actually present before multiplying:
	// two hostile u32 dimensions can overflow the product (and a huge
	// honest product would be an allocation bomb), so an undersized
	// payload must be rejected without ever computing rows*cols.
	avail := (len(buf) - 8) / 8
	if rows < 0 || cols < 0 || (cols > 0 && rows > avail/cols) {
		return nil, nil, fmt.Errorf("stats: %dx%d matrix does not fit %d bytes", rows, cols, len(buf))
	}
	n := rows * cols
	if len(buf) < 8+8*n {
		return nil, nil, fmt.Errorf("stats: %dx%d matrix needs %d bytes, have %d", rows, cols, 8+8*n, len(buf))
	}
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8+8*i:]))
	}
	return m, buf[8+8*n:], nil
}

// UnmarshalBinary decodes the matrix (encoding.BinaryUnmarshaler),
// rejecting trailing garbage.
func (m *Matrix) UnmarshalBinary(data []byte) error {
	dec, rest, err := DecodeMatrix(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("stats: %d trailing bytes after matrix", len(rest))
	}
	*m = *dec
	return nil
}

// appendF64s appends a length-prefixed float64 slice.
func appendF64s(buf []byte, xs []float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(xs)))
	for _, v := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// decodeF64s consumes a length-prefixed float64 slice.
func decodeF64s(buf []byte) ([]float64, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("stats: slice header truncated")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n < 0 || len(buf) < 4+8*n {
		return nil, nil, fmt.Errorf("stats: %d-element slice needs %d bytes, have %d", n, 4+8*n, len(buf))
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[4+8*i:]))
	}
	return xs, buf[4+8*n:], nil
}

// MarshalBinary encodes the fitted PCA model: components, variances,
// input statistics and total variance (encoding.BinaryMarshaler).
func (p *PCA) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, matrixEncodingSize(p.Components)+8*(len(p.Variances)+len(p.InputStats.Mean)+len(p.InputStats.Std))+32)
	buf = p.Components.AppendBinary(buf)
	buf = appendF64s(buf, p.Variances)
	buf = appendF64s(buf, p.InputStats.Mean)
	buf = appendF64s(buf, p.InputStats.Std)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.TotalVariance))
	return buf, nil
}

// UnmarshalBinary decodes a PCA model encoded by MarshalBinary
// (encoding.BinaryUnmarshaler).
func (p *PCA) UnmarshalBinary(data []byte) error {
	comp, rest, err := DecodeMatrix(data)
	if err != nil {
		return fmt.Errorf("stats: PCA components: %w", err)
	}
	variances, rest, err := decodeF64s(rest)
	if err != nil {
		return fmt.Errorf("stats: PCA variances: %w", err)
	}
	mean, rest, err := decodeF64s(rest)
	if err != nil {
		return fmt.Errorf("stats: PCA means: %w", err)
	}
	std, rest, err := decodeF64s(rest)
	if err != nil {
		return fmt.Errorf("stats: PCA stds: %w", err)
	}
	if len(rest) != 8 {
		return fmt.Errorf("stats: PCA total variance: %d trailing bytes, want 8", len(rest))
	}
	p.Components = comp
	p.Variances = variances
	p.InputStats = ColumnStats{Mean: mean, Std: std}
	p.TotalVariance = math.Float64frombits(binary.LittleEndian.Uint64(rest))
	return nil
}
