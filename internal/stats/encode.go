package stats

// Binary serialization for the persistable analysis artifacts. Every
// float64 round-trips through its IEEE-754 bits, so a decoded matrix or
// PCA model is bit-identical to the encoded one — the property the
// pipeline's resume guarantee rests on. Integrity (checksums, truncation
// detection) is the storage layer's job (internal/fcache); these decoders
// only have to reject structurally inconsistent payloads.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/kernel"
)

// The matrix wire layout is self-aligning: rows, cols and the pad length
// (u32 each) are followed by padLen zero bytes chosen by the encoder so
// the float64 block starts at a buffer offset that is a multiple of 8.
// Combined with the storage layer placing payloads at 8-aligned file
// offsets (fcache's FCH2 header), the decoder can usually reinterpret
// the float block in place — one kernel.AliasFloats call instead of a
// per-element byte-shuffling loop. When the block lands misaligned (a
// foreign framing layer, a sub-slice at an odd offset), the decoder
// falls back to a bulk copy; the decoded values are identical either
// way, only the sharing differs.

// matrixEncodingSize bounds the encoded size of a matrix: rows, cols,
// padLen (u32 each), up to 7 pad bytes, and the row-major float64 data.
func matrixEncodingSize(m *Matrix) int { return 12 + 7 + 8*len(m.Data) }

// matrixPad returns the pad length that 8-aligns a float block appended
// after a 12-byte matrix header written at buffer offset off.
func matrixPad(off int) int { return (8 - (off+12)%8) % 8 }

// AppendBinary appends m's encoding to buf and returns the extended
// slice, for callers composing a matrix into a larger artifact. The pad
// is computed from len(buf), so the float block is 8-aligned relative to
// the start of the composed encoding.
func (m *Matrix) AppendBinary(buf []byte) []byte {
	pad := matrixPad(len(buf))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Cols))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(pad))
	for i := 0; i < pad; i++ {
		buf = append(buf, 0)
	}
	return kernel.AppendFloats(buf, m.Data)
}

// MarshalBinary encodes the matrix (encoding.BinaryMarshaler).
func (m *Matrix) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(make([]byte, 0, matrixEncodingSize(m))), nil
}

// DecodeMatrix consumes one encoded matrix from the front of buf and
// returns it with the remaining bytes, for callers decoding composed
// artifacts. When the float block is 8-aligned in memory the returned
// matrix aliases buf (zero-copy) — callers that mutate the result while
// also reusing buf must Clone it first; the pipeline's decoded artifacts
// are read-only, so the fast path is the norm.
func DecodeMatrix(buf []byte) (*Matrix, []byte, error) {
	if len(buf) < 12 {
		return nil, nil, fmt.Errorf("stats: matrix header truncated (%d bytes)", len(buf))
	}
	rows := int(binary.LittleEndian.Uint32(buf))
	cols := int(binary.LittleEndian.Uint32(buf[4:]))
	pad := int(binary.LittleEndian.Uint32(buf[8:]))
	if pad > 7 {
		return nil, nil, fmt.Errorf("stats: matrix pad %d out of range [0,7]", pad)
	}
	if len(buf) < 12+pad {
		return nil, nil, fmt.Errorf("stats: matrix pad truncated (%d bytes)", len(buf))
	}
	body := buf[12+pad:]
	// Bound rows*cols by the bytes actually present before multiplying:
	// two hostile u32 dimensions can overflow the product (and a huge
	// honest product would be an allocation bomb), so an undersized
	// payload must be rejected without ever computing rows*cols.
	avail := len(body) / 8
	if rows < 0 || cols < 0 || (cols > 0 && rows > avail/cols) {
		return nil, nil, fmt.Errorf("stats: %dx%d matrix does not fit %d bytes", rows, cols, len(buf))
	}
	n := rows * cols
	if len(body) < 8*n {
		return nil, nil, fmt.Errorf("stats: %dx%d matrix needs %d bytes, have %d", rows, cols, 12+pad+8*n, len(buf))
	}
	m := &Matrix{Rows: rows, Cols: cols}
	if data, ok := kernel.AliasFloats(body, n); ok {
		m.Data = data
	} else {
		m.Data = make([]float64, n)
		kernel.CopyFloats(m.Data, body)
	}
	return m, body[8*n:], nil
}

// UnmarshalBinary decodes the matrix (encoding.BinaryUnmarshaler),
// rejecting trailing garbage.
func (m *Matrix) UnmarshalBinary(data []byte) error {
	dec, rest, err := DecodeMatrix(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("stats: %d trailing bytes after matrix", len(rest))
	}
	*m = *dec
	return nil
}

// appendF64s appends a length-prefixed float64 slice.
func appendF64s(buf []byte, xs []float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(xs)))
	return kernel.AppendFloats(buf, xs)
}

// decodeF64s consumes a length-prefixed float64 slice. These slices are
// small (per-column statistics, eigenvalues), so they always copy;
// zero-copy aliasing is reserved for the matrix float blocks.
func decodeF64s(buf []byte) ([]float64, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("stats: slice header truncated")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n < 0 || len(buf) < 4+8*n {
		return nil, nil, fmt.Errorf("stats: %d-element slice needs %d bytes, have %d", n, 4+8*n, len(buf))
	}
	xs := make([]float64, n)
	kernel.CopyFloats(xs, buf[4:])
	return xs, buf[4+8*n:], nil
}

// MarshalBinary encodes the fitted PCA model: components, variances,
// input statistics and total variance (encoding.BinaryMarshaler).
func (p *PCA) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, matrixEncodingSize(p.Components)+8*(len(p.Variances)+len(p.InputStats.Mean)+len(p.InputStats.Std))+32)
	buf = p.Components.AppendBinary(buf)
	buf = appendF64s(buf, p.Variances)
	buf = appendF64s(buf, p.InputStats.Mean)
	buf = appendF64s(buf, p.InputStats.Std)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.TotalVariance))
	return buf, nil
}

// UnmarshalBinary decodes a PCA model encoded by MarshalBinary
// (encoding.BinaryUnmarshaler).
func (p *PCA) UnmarshalBinary(data []byte) error {
	comp, rest, err := DecodeMatrix(data)
	if err != nil {
		return fmt.Errorf("stats: PCA components: %w", err)
	}
	variances, rest, err := decodeF64s(rest)
	if err != nil {
		return fmt.Errorf("stats: PCA variances: %w", err)
	}
	mean, rest, err := decodeF64s(rest)
	if err != nil {
		return fmt.Errorf("stats: PCA means: %w", err)
	}
	std, rest, err := decodeF64s(rest)
	if err != nil {
		return fmt.Errorf("stats: PCA stds: %w", err)
	}
	if len(rest) != 8 {
		return fmt.Errorf("stats: PCA total variance: %d trailing bytes, want 8", len(rest))
	}
	p.Components = comp
	p.Variances = variances
	p.InputStats = ColumnStats{Mean: mean, Std: std}
	p.TotalVariance = math.Float64frombits(binary.LittleEndian.Uint64(rest))
	return nil
}
