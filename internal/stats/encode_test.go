package stats

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
)

func testMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return m
}

func TestMatrixBinaryRoundTripBitExact(t *testing.T) {
	m := testMatrix(7, 5, 1)
	// Exercise the bit-exactness claim on the awkward values too.
	m.Data[0] = math.Copysign(0, -1)
	m.Data[1] = math.Inf(1)
	m.Data[2] = math.NaN()
	m.Data[3] = 5e-324 // smallest subnormal

	buf, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Matrix
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if got.Rows != m.Rows || got.Cols != m.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, m.Rows, m.Cols)
	}
	for i := range m.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(m.Data[i]) {
			t.Fatalf("element %d: %x != %x", i, math.Float64bits(got.Data[i]), math.Float64bits(m.Data[i]))
		}
	}
}

func TestMatrixDecodeRejectsDamage(t *testing.T) {
	m := testMatrix(3, 4, 2)
	buf, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Matrix
	for _, n := range []int{0, 4, 7, len(buf) - 1} {
		if err := got.UnmarshalBinary(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	if err := got.UnmarshalBinary(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// DecodeMatrix (the composing form) must hand trailing bytes back.
	tail := []byte{1, 2, 3}
	dec, rest, err := DecodeMatrix(append(append([]byte(nil), buf...), tail...))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rows != m.Rows || !bytes.Equal(rest, tail) {
		t.Fatalf("DecodeMatrix rest = %v, want %v", rest, tail)
	}
}

// TestDecodeMatrixZeroCopyAlias pins the fast path: when the float block
// is 8-aligned in memory, the decoded matrix aliases the input buffer
// instead of copying it.
func TestDecodeMatrixZeroCopyAlias(t *testing.T) {
	m := testMatrix(6, 9, 7)
	buf, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeMatrix(buf)
	if err != nil {
		t.Fatal(err)
	}
	pad := int(binary.LittleEndian.Uint32(buf[8:]))
	body := buf[12+pad:]
	alias, ok := kernel.AliasFloats(body, len(m.Data))
	if !ok {
		t.Skip("platform cannot alias float blocks; fallback path covered elsewhere")
	}
	if &got.Data[0] != &alias[0] {
		t.Fatal("aligned decode did not alias the input buffer")
	}
	// The alias is live: flipping a payload bit must show through.
	buf[12+pad] ^= 1
	if math.Float64bits(got.Data[0]) == math.Float64bits(m.Data[0]) {
		t.Fatal("decoded data did not observe a buffer mutation; not zero-copy")
	}
}

// TestDecodeMatrixMisalignedFallsBack shifts an honest encoding to every
// odd offset inside a larger buffer; the decoder must fall back to the
// copying path and still produce bit-identical values, never panic.
func TestDecodeMatrixMisalignedFallsBack(t *testing.T) {
	m := testMatrix(5, 3, 8)
	m.Data[0] = math.NaN()
	m.Data[1] = math.Copysign(0, -1)
	buf, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for off := 1; off <= 7; off++ {
		shifted := make([]byte, off+len(buf))
		copy(shifted[off:], buf)
		got, rest, err := DecodeMatrix(shifted[off:])
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if len(rest) != 0 || got.Rows != m.Rows || got.Cols != m.Cols {
			t.Fatalf("offset %d: decoded %dx%d with %d trailing bytes", off, got.Rows, got.Cols, len(rest))
		}
		for i := range m.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(m.Data[i]) {
				t.Fatalf("offset %d element %d: %x != %x", off, i, math.Float64bits(got.Data[i]), math.Float64bits(m.Data[i]))
			}
		}
	}
}

// TestDecodeMatrixRejectsBadPad corrupts the pad field: values outside
// [0,7] and pads that run past the buffer must error, not misparse.
func TestDecodeMatrixRejectsBadPad(t *testing.T) {
	m := testMatrix(2, 2, 9)
	buf, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, pad := range []uint32{8, 255, 1 << 30} {
		bad := append([]byte(nil), buf...)
		binary.LittleEndian.PutUint32(bad[8:], pad)
		if _, _, err := DecodeMatrix(bad); err == nil {
			t.Fatalf("pad %d accepted", pad)
		}
	}
	// A header whose declared pad extends past the end of the buffer.
	short := []byte{1, 0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 0, 0}
	if _, _, err := DecodeMatrix(short); err == nil {
		t.Fatal("truncated pad accepted")
	}
}

func TestPCABinaryRoundTripBitExact(t *testing.T) {
	p, err := ComputePCA(testMatrix(20, 6, 3), true)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got PCA
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	buf2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("PCA model does not round-trip byte-identically")
	}
	if math.Float64bits(got.TotalVariance) != math.Float64bits(p.TotalVariance) {
		t.Fatalf("total variance %v != %v", got.TotalVariance, p.TotalVariance)
	}
	// A resumed model must project exactly like the fitted one.
	in := testMatrix(4, 6, 4)
	a, err := p.Project(in, p.NumRetained(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Project(in, got.NumRetained(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("projection element %d differs after round trip", i)
		}
	}

	for _, n := range []int{0, 9, len(buf) / 2, len(buf) - 1} {
		if err := got.UnmarshalBinary(buf[:n]); err == nil {
			t.Fatalf("PCA truncation to %d bytes decoded", n)
		}
	}
	if err := got.UnmarshalBinary(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("PCA trailing byte accepted")
	}
}
