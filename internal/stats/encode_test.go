package stats

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func testMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return m
}

func TestMatrixBinaryRoundTripBitExact(t *testing.T) {
	m := testMatrix(7, 5, 1)
	// Exercise the bit-exactness claim on the awkward values too.
	m.Data[0] = math.Copysign(0, -1)
	m.Data[1] = math.Inf(1)
	m.Data[2] = math.NaN()
	m.Data[3] = 5e-324 // smallest subnormal

	buf, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Matrix
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if got.Rows != m.Rows || got.Cols != m.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, m.Rows, m.Cols)
	}
	for i := range m.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(m.Data[i]) {
			t.Fatalf("element %d: %x != %x", i, math.Float64bits(got.Data[i]), math.Float64bits(m.Data[i]))
		}
	}
}

func TestMatrixDecodeRejectsDamage(t *testing.T) {
	m := testMatrix(3, 4, 2)
	buf, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Matrix
	for _, n := range []int{0, 4, 7, len(buf) - 1} {
		if err := got.UnmarshalBinary(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	if err := got.UnmarshalBinary(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// DecodeMatrix (the composing form) must hand trailing bytes back.
	tail := []byte{1, 2, 3}
	dec, rest, err := DecodeMatrix(append(append([]byte(nil), buf...), tail...))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rows != m.Rows || !bytes.Equal(rest, tail) {
		t.Fatalf("DecodeMatrix rest = %v, want %v", rest, tail)
	}
}

func TestPCABinaryRoundTripBitExact(t *testing.T) {
	p, err := ComputePCA(testMatrix(20, 6, 3), true)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got PCA
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	buf2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("PCA model does not round-trip byte-identically")
	}
	if math.Float64bits(got.TotalVariance) != math.Float64bits(p.TotalVariance) {
		t.Fatalf("total variance %v != %v", got.TotalVariance, p.TotalVariance)
	}
	// A resumed model must project exactly like the fitted one.
	in := testMatrix(4, 6, 4)
	a, err := p.Project(in, p.NumRetained(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Project(in, got.NumRetained(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("projection element %d differs after round trip", i)
		}
	}

	for _, n := range []int{0, 9, len(buf) / 2, len(buf) - 1} {
		if err := got.UnmarshalBinary(buf[:n]); err == nil {
			t.Fatalf("PCA truncation to %d bytes decoded", n)
		}
	}
	if err := got.UnmarshalBinary(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("PCA trailing byte accepted")
	}
}
