package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleComputePCA reduces a tiny correlated data set to its principal
// components and reports how much variance the first component carries.
func ExampleComputePCA() {
	// Two perfectly correlated columns plus one constant: one real
	// dimension of information.
	data, err := stats.FromRows([][]float64{
		{1, 2, 5},
		{2, 4, 5},
		{3, 6, 5},
		{4, 8, 5},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	pca, err := stats.ComputePCA(data, true)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("retained=%d pc1=%.0f%%\n",
		pca.NumRetained(1.0), 100*pca.ExplainedVariance(1))
	// Output: retained=1 pc1=100%
}

// ExamplePearson measures linear correlation between two samples.
func ExamplePearson() {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	fmt.Printf("%.2f\n", stats.Pearson(x, y))
	// Output: 1.00
}
