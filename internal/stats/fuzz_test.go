package stats

// Native fuzz targets for the binary decoders. The contract under test:
// arbitrary bytes must produce an error or a value, never a panic or an
// unbounded allocation — cache entries and shard RPC payloads cross
// trust boundaries (disk damage, network corruption) before they reach
// these decoders. Accepted payloads must also re-encode and re-decode
// cleanly (the resume path depends on that round trip).

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeeds returns the per-target seed corpus: one honest encoding plus
// truncations and a few structurally hostile headers.
func fuzzSeeds() map[string][][]byte {
	m := NewMatrix(2, 3)
	for i := range m.Data {
		m.Data[i] = float64(i) / 2
	}
	mat, _ := m.MarshalBinary()
	p := &PCA{
		Components:    m,
		Variances:     []float64{1, 0.5},
		InputStats:    ColumnStats{Mean: []float64{0, 1, 2}, Std: []float64{1, 1, 2}},
		TotalVariance: 1.5,
	}
	pca, _ := p.MarshalBinary()
	// 0x40000000 x 0x40000000 rows*cols overflows 32-bit and lands on a
	// small positive int64 product — the classic decoder bomb.
	bomb := []byte{0, 0, 0, 0x40, 0, 0, 0, 0x40, 1, 2, 3}
	// A matrix encoded mid-stream carries a different pad length than the
	// standalone encoding — seed the non-default pad path.
	mat3 := m.AppendBinary(make([]byte, 1))[1:]
	// A pad length outside [0,7] must be rejected, never skipped.
	badPad := append([]byte(nil), mat...)
	badPad[8] = 8
	return map[string][][]byte{
		"FuzzDecodeMatrix": {mat, mat[:5], mat3, badPad, bomb, {}},
		"FuzzDecodePCA":    {pca, pca[:len(pca)-4], bomb, {}},
	}
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz. Run with WRITE_FUZZ_CORPUS=1 after changing a codec.
func TestWriteFuzzCorpus(t *testing.T) {
	writeFuzzCorpus(t, fuzzSeeds())
}

// writeFuzzCorpus is shared by every package's corpus test (duplicated
// locally; test helpers cannot be imported across packages).
func writeFuzzCorpus(t *testing.T, seeds map[string][][]byte) {
	t.Helper()
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	for target, entries := range seeds {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, data := range entries {
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func FuzzDecodeMatrix(f *testing.F) {
	for _, s := range fuzzSeeds()["FuzzDecodeMatrix"] {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, rest, err := DecodeMatrix(data)
		if err != nil {
			return
		}
		if len(m.Data) != m.Rows*m.Cols {
			t.Fatalf("accepted %dx%d matrix with %d values", m.Rows, m.Cols, len(m.Data))
		}
		out, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := new(Matrix).UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		_ = rest
	})
}

func FuzzDecodePCA(f *testing.F) {
	for _, s := range fuzzSeeds()["FuzzDecodePCA"] {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var p PCA
		if err := p.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := new(PCA).UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}
