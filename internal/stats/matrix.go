// Package stats provides the dense-matrix and multivariate-statistics
// substrate of the characterization pipeline: column normalization,
// principal components analysis (via a Jacobi eigensolver), Pearson
// correlation and pairwise distances.
package stats

import (
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/par"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("stats: negative matrix dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("stats: no rows")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// SelectColumns returns a new matrix containing only the given columns, in
// the given order.
func (m *Matrix) SelectColumns(cols []int) (*Matrix, error) {
	for _, c := range cols {
		if c < 0 || c >= m.Cols {
			return nil, fmt.Errorf("stats: column %d out of range [0,%d)", c, m.Cols)
		}
	}
	out := NewMatrix(m.Rows, len(cols))
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for j, c := range cols {
			dst[j] = src[c]
		}
	}
	return out, nil
}

// ColumnStats holds per-column mean and standard deviation.
type ColumnStats struct {
	Mean, Std []float64
}

// ColumnMeansStds computes per-column mean and (population) standard
// deviation.
func (m *Matrix) ColumnMeansStds() ColumnStats {
	var cs ColumnStats
	m.columnMeansStdsInto(&cs)
	return cs
}

// columnMeansStdsInto is ColumnMeansStds into reused ColumnStats slices.
func (m *Matrix) columnMeansStdsInto(cs *ColumnStats) {
	cs.Mean = growFloats(cs.Mean, m.Cols)
	cs.Std = growFloats(cs.Std, m.Cols)
	mean, std := cs.Mean, cs.Std
	for j := range mean {
		mean[j] = 0
		std[j] = 0
	}
	if m.Rows == 0 {
		return
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	n := float64(m.Rows)
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / n)
	}
}

// Normalize returns a copy of m with every column shifted to zero mean and
// scaled to unit variance. Constant columns are centered but left unscaled
// (they carry no information; scaling them would divide by zero).
func (m *Matrix) Normalize() (*Matrix, ColumnStats) {
	cs := m.ColumnMeansStds()
	out := NewMatrix(m.Rows, m.Cols)
	m.normalizeInto(out, &cs)
	return out, cs
}

// normalizeInto centers (and, where cs.Std > 0, scales) m into the
// pre-sized dst using the provided column statistics.
func (m *Matrix) normalizeInto(dst *Matrix, cs *ColumnStats) {
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		out := dst.Row(i)
		for j, v := range src {
			d := v - cs.Mean[j]
			if cs.Std[j] > 0 {
				d /= cs.Std[j]
			}
			out[j] = d
		}
	}
}

// Covariance computes the Cols x Cols (population) covariance matrix of m's
// columns.
func (m *Matrix) Covariance() *Matrix {
	cov := NewMatrix(m.Cols, m.Cols)
	var cs ColumnStats
	m.covarianceInto(cov, &cs)
	return cov
}

// covarianceInto is Covariance into the pre-sized cov matrix, with cs as
// reused scratch for the internal column statistics.
func (m *Matrix) covarianceInto(cov *Matrix, cs *ColumnStats) {
	m.columnMeansStdsInto(cs)
	p := m.Cols
	for i := range cov.Data {
		cov.Data[i] = 0
	}
	if m.Rows == 0 {
		return
	}
	n := float64(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a := 0; a < p; a++ {
			da := row[a] - cs.Mean[a]
			if da == 0 {
				continue
			}
			base := a * p
			for b := a; b < p; b++ {
				cov.Data[base+b] += da * (row[b] - cs.Mean[b])
			}
		}
	}
	for a := 0; a < p; a++ {
		for b := a; b < p; b++ {
			v := cov.At(a, b) / n
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
}

// EuclideanDistance returns the Euclidean distance between two equal-length
// vectors. It delegates to the shared blocked kernel — the repo's single
// distance implementation.
func EuclideanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: distance between vectors of length %d and %d", len(a), len(b)))
	}
	return kernel.Distance(a, b)
}

// PairwiseDistances returns the upper-triangle (i < j) Euclidean distances
// between the rows of m, flattened in row-major order of pairs.
func PairwiseDistances(m *Matrix) []float64 {
	return ParallelPairwiseDistances(m, 1)
}

// ParallelPairwiseDistances computes PairwiseDistances with the rows
// chunked over up to workers goroutines (values < 1 mean GOMAXPROCS).
// Every pair (i, j) writes only its own output slot at a position that is
// a pure function of (i, j, Rows), so the result is byte-identical for
// any worker count.
func ParallelPairwiseDistances(m *Matrix, workers int) []float64 {
	n := m.Rows
	out := make([]float64, n*(n-1)/2)
	par.ForChunks(workers, n, 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := m.Row(i)
			base := i*(n-1) - i*(i-1)/2 - i - 1 // + j = slot of pair (i, j)
			for j := i + 1; j < n; j++ {
				out[base+j] = EuclideanDistance(ri, m.Row(j))
			}
		}
	})
	return out
}

// Pearson computes the Pearson correlation coefficient between two
// equal-length samples. It returns 0 if either sample has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Pearson over samples of length %d and %d", len(x), len(y)))
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
