package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("matrix shape wrong: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("new matrix not zeroed")
		}
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dimension accepted")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != 2 {
		t.Fatal("FromRows layout wrong")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty rows accepted")
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestSetAtRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 9)
	if m.At(1, 2) != 9 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a mutable view")
	}
}

func TestClone(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestSelectColumns(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	s, err := m.SelectColumns([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 0) != 3 || s.At(0, 1) != 1 || s.At(1, 0) != 6 {
		t.Fatalf("SelectColumns wrong: %+v", s.Data)
	}
	if _, err := m.SelectColumns([]int{3}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := m.SelectColumns([]int{-1}); err == nil {
		t.Fatal("negative column accepted")
	}
}

func TestColumnMeansStds(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 10}, {3, 10}})
	cs := m.ColumnMeansStds()
	if cs.Mean[0] != 2 || cs.Mean[1] != 10 {
		t.Fatalf("means = %v", cs.Mean)
	}
	if cs.Std[0] != 1 || cs.Std[1] != 0 {
		t.Fatalf("stds = %v", cs.Std)
	}
}

func TestNormalize(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 5}, {3, 5}, {5, 5}})
	n, cs := m.Normalize()
	nn := n.ColumnMeansStds()
	if !almostEq(nn.Mean[0], 0, 1e-12) || !almostEq(nn.Std[0], 1, 1e-12) {
		t.Fatalf("normalized column stats = %v/%v", nn.Mean[0], nn.Std[0])
	}
	// Constant column: centered, not scaled.
	if n.At(0, 1) != 0 || n.At(2, 1) != 0 {
		t.Fatal("constant column not centered")
	}
	if cs.Mean[1] != 5 {
		t.Fatal("returned stats wrong")
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Perfectly correlated columns y = 2x with x in {-1, 0, 1}.
	m, _ := FromRows([][]float64{{-1, -2}, {0, 0}, {1, 2}})
	cov := m.Covariance()
	wantXX := 2.0 / 3
	if !almostEq(cov.At(0, 0), wantXX, 1e-12) {
		t.Fatalf("var(x) = %v, want %v", cov.At(0, 0), wantXX)
	}
	if !almostEq(cov.At(0, 1), 2*wantXX, 1e-12) || !almostEq(cov.At(1, 0), 2*wantXX, 1e-12) {
		t.Fatalf("cov(x,y) = %v, want %v", cov.At(0, 1), 2*wantXX)
	}
	if !almostEq(cov.At(1, 1), 4*wantXX, 1e-12) {
		t.Fatalf("var(y) = %v", cov.At(1, 1))
	}
}

func TestEuclideanDistance(t *testing.T) {
	if got := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Fatalf("distance = %v, want 5", got)
	}
}

func TestEuclideanDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	EuclideanDistance([]float64{1}, []float64{1, 2})
}

func TestParallelPairwiseDistancesMatchesSerial(t *testing.T) {
	m := NewMatrix(57, 7)
	for i := range m.Data {
		m.Data[i] = float64((i*2654435761)%1000) / 999
	}
	ref := PairwiseDistances(m)
	if len(ref) != m.Rows*(m.Rows-1)/2 {
		t.Fatalf("pair count %d", len(ref))
	}
	for _, workers := range []int{2, 3, 8} {
		got := ParallelPairwiseDistances(m, workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: pair %d = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestPairwiseDistances(t *testing.T) {
	m, _ := FromRows([][]float64{{0}, {1}, {3}})
	d := PairwiseDistances(m)
	want := []float64{1, 3, 2} // (0,1) (0,2) (1,2)
	if len(d) != 3 {
		t.Fatalf("got %d distances", len(d))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("distances = %v, want %v", d, want)
		}
	}
}

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Pearson(x, []float64{2, 4, 6, 8}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", got)
	}
	if got := Pearson(x, []float64{8, 6, 4, 2}); !almostEq(got, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant sample correlation = %v", got)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 4 {
			return true
		}
		n := len(xs) / 2
		x, y := xs[:n], xs[n:2*n]
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r := Pearson(x, y)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("stddev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
}
