package stats

import (
	"fmt"
	"math"
	"sort"
)

// PCA holds the result of a principal components analysis: the components
// (eigenvectors of the covariance matrix), their variances (eigenvalues)
// and the column statistics of the input data that scores must be computed
// against.
type PCA struct {
	// Components is p x p: row k is the loading vector of principal
	// component k (components are sorted by decreasing variance).
	Components *Matrix
	// Variances are the eigenvalues, sorted decreasing.
	Variances []float64
	// InputStats holds the mean/std the input was normalized with before
	// the analysis (all-zero std entries mean no scaling was applied).
	InputStats ColumnStats
	// TotalVariance is the sum of all eigenvalues.
	TotalVariance float64
}

// ComputePCA runs a principal components analysis on the rows of data. If
// normalize is true (the usual case for workload characterization, where
// the characteristics live on wildly different scales), columns are first
// normalized to zero mean and unit variance.
func ComputePCA(data *Matrix, normalize bool) (*PCA, error) {
	if data.Rows < 2 {
		return nil, fmt.Errorf("stats: PCA needs at least 2 rows, have %d", data.Rows)
	}
	if data.Cols < 1 {
		return nil, fmt.Errorf("stats: PCA needs at least 1 column")
	}
	work := data
	var cs ColumnStats
	if normalize {
		work, cs = data.Normalize()
	} else {
		cs = ColumnStats{Mean: make([]float64, data.Cols), Std: make([]float64, data.Cols)}
		for j := range cs.Std {
			cs.Std[j] = 1
		}
		// Center only (PCA is defined on centered data).
		ms := data.ColumnMeansStds()
		cs.Mean = ms.Mean
		work = NewMatrix(data.Rows, data.Cols)
		for i := 0; i < data.Rows; i++ {
			src, dst := data.Row(i), work.Row(i)
			for j, v := range src {
				dst[j] = v - ms.Mean[j]
			}
		}
	}
	cov := work.Covariance()
	vals, vecs, err := JacobiEigen(cov, 200, 1e-12)
	if err != nil {
		return nil, err
	}

	// Sort eigenpairs by decreasing eigenvalue.
	p := data.Cols
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	// sort.Slice is unstable, so exactly equal eigenvalues (rank-deficient
	// or symmetric data) need an explicit tie-break on the original
	// eigenpair index to keep the component order deterministic.
	sort.Slice(order, func(a, b int) bool {
		va, vb := vals[order[a]], vals[order[b]]
		if va != vb {
			return va > vb
		}
		return order[a] < order[b]
	})

	pca := &PCA{
		Components: NewMatrix(p, p),
		Variances:  make([]float64, p),
		InputStats: cs,
	}
	for k, idx := range order {
		v := vals[idx]
		if v < 0 && v > -1e-10 {
			v = 0 // numerical noise on rank-deficient data
		}
		pca.Variances[k] = v
		pca.TotalVariance += v
		// Eigenvector idx is column idx of vecs.
		for j := 0; j < p; j++ {
			pca.Components.Set(k, j, vecs.At(j, idx))
		}
	}
	return pca, nil
}

// NumRetained returns how many leading components have standard deviation
// greater than minStd (the paper retains components with std > 1 on
// normalized data). At least one component is always retained.
func (p *PCA) NumRetained(minStd float64) int {
	n := 0
	for _, v := range p.Variances {
		if math.Sqrt(math.Max(v, 0)) > minStd {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// ExplainedVariance returns the fraction of total variance captured by the
// first k components.
func (p *PCA) ExplainedVariance(k int) float64 {
	if p.TotalVariance == 0 {
		return 0
	}
	if k > len(p.Variances) {
		k = len(p.Variances)
	}
	var s float64
	for i := 0; i < k; i++ {
		s += p.Variances[i]
	}
	return s / p.TotalVariance
}

// Project maps the rows of data (raw, un-normalized) into the space of the
// first k principal components, applying the stored normalization.
func (p *PCA) Project(data *Matrix, k int) (*Matrix, error) {
	if data.Cols != p.Components.Cols {
		return nil, fmt.Errorf("stats: projecting %d-column data through %d-column PCA", data.Cols, p.Components.Cols)
	}
	if k < 1 || k > p.Components.Rows {
		return nil, fmt.Errorf("stats: cannot retain %d of %d components", k, p.Components.Rows)
	}
	out := NewMatrix(data.Rows, k)
	ncols := data.Cols
	centered := make([]float64, ncols)
	for i := 0; i < data.Rows; i++ {
		row := data.Row(i)
		for j, v := range row {
			d := v - p.InputStats.Mean[j]
			if p.InputStats.Std[j] > 0 {
				d /= p.InputStats.Std[j]
			}
			centered[j] = d
		}
		dst := out.Row(i)
		for c := 0; c < k; c++ {
			comp := p.Components.Row(c)
			var s float64
			for j := 0; j < ncols; j++ {
				s += comp[j] * centered[j]
			}
			dst[c] = s
		}
	}
	return out, nil
}

// RescaledScores projects data onto the first k components and then
// normalizes each score column to unit variance — the paper's "rescaled
// PCA space", which gives every retained underlying program characteristic
// equal weight in subsequent distance computations.
func (p *PCA) RescaledScores(data *Matrix, k int) (*Matrix, error) {
	scores, err := p.Project(data, k)
	if err != nil {
		return nil, err
	}
	rescaled, _ := scores.Normalize()
	return rescaled, nil
}

// JacobiEigen computes all eigenvalues and eigenvectors of the symmetric
// matrix a using the cyclic Jacobi rotation method. It returns the
// eigenvalues and a matrix whose columns are the corresponding
// eigenvectors. a is not modified.
func JacobiEigen(a *Matrix, maxSweeps int, tol float64) ([]float64, *Matrix, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, nil, fmt.Errorf("stats: Jacobi on non-square %dx%d matrix", a.Rows, a.Cols)
	}
	// Verify symmetry (within tolerance scaled by magnitude).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Abs(a.At(i, j) - a.At(j, i))
			scale := math.Max(1, math.Max(math.Abs(a.At(i, j)), math.Abs(a.At(j, i))))
			if d > 1e-8*scale {
				return nil, nil, fmt.Errorf("stats: Jacobi on non-symmetric matrix (|a[%d,%d]-a[%d,%d]| = %g)", i, j, j, i, d)
			}
		}
	}

	m := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal norm for convergence.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < tol*tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := m.At(p, p)
				aqq := m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply rotation J(p, q, theta): rows/cols p and q.
				for k := 0; k < n; k++ {
					akp := m.At(k, p)
					akq := m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := m.At(p, k)
					aqk := m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	return vals, v, nil
}
