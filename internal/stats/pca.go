package stats

import (
	"fmt"
	"math"

	"repro/internal/kernel"
)

// PCA holds the result of a principal components analysis: the components
// (eigenvectors of the covariance matrix), their variances (eigenvalues)
// and the column statistics of the input data that scores must be computed
// against.
type PCA struct {
	// Components is p x p: row k is the loading vector of principal
	// component k (components are sorted by decreasing variance).
	Components *Matrix
	// Variances are the eigenvalues, sorted decreasing.
	Variances []float64
	// InputStats holds the mean/std the input was normalized with before
	// the analysis (all-zero std entries mean no scaling was applied).
	InputStats ColumnStats
	// TotalVariance is the sum of all eigenvalues.
	TotalVariance float64
}

// ComputePCA runs a principal components analysis on the rows of data. If
// normalize is true (the usual case for workload characterization, where
// the characteristics live on wildly different scales), columns are first
// normalized to zero mean and unit variance.
func ComputePCA(data *Matrix, normalize bool) (*PCA, error) {
	// A throwaway workspace: the returned PCA takes sole ownership of the
	// freshly allocated buffers.
	return new(PCAWorkspace).ComputePCA(data, normalize)
}

// NumRetained returns how many leading components have standard deviation
// greater than minStd (the paper retains components with std > 1 on
// normalized data). At least one component is always retained.
func (p *PCA) NumRetained(minStd float64) int {
	n := 0
	for _, v := range p.Variances {
		if math.Sqrt(math.Max(v, 0)) > minStd {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// ExplainedVariance returns the fraction of total variance captured by the
// first k components.
func (p *PCA) ExplainedVariance(k int) float64 {
	if p.TotalVariance == 0 {
		return 0
	}
	if k > len(p.Variances) {
		k = len(p.Variances)
	}
	var s float64
	for i := 0; i < k; i++ {
		s += p.Variances[i]
	}
	return s / p.TotalVariance
}

// Project maps the rows of data (raw, un-normalized) into the space of the
// first k principal components, applying the stored normalization.
func (p *PCA) Project(data *Matrix, k int) (*Matrix, error) {
	if err := p.checkProject(data, k); err != nil {
		return nil, err
	}
	out := NewMatrix(data.Rows, k)
	centered := make([]float64, data.Cols)
	p.projectInto(data, k, out, centered)
	return out, nil
}

func (p *PCA) checkProject(data *Matrix, k int) error {
	if data.Cols != p.Components.Cols {
		return fmt.Errorf("stats: projecting %d-column data through %d-column PCA", data.Cols, p.Components.Cols)
	}
	if k < 1 || k > p.Components.Rows {
		return fmt.Errorf("stats: cannot retain %d of %d components", k, p.Components.Rows)
	}
	return nil
}

// projectInto writes the k-component scores of data into out (pre-sized
// Rows x k) using centered (pre-sized Cols) as per-row scratch. The
// per-component score is a kernel dot product of the loading vector with
// the centered row.
func (p *PCA) projectInto(data *Matrix, k int, out *Matrix, centered []float64) {
	for i := 0; i < data.Rows; i++ {
		row := data.Row(i)
		for j, v := range row {
			d := v - p.InputStats.Mean[j]
			if p.InputStats.Std[j] > 0 {
				d /= p.InputStats.Std[j]
			}
			centered[j] = d
		}
		dst := out.Row(i)
		for c := 0; c < k; c++ {
			dst[c] = kernel.Dot(p.Components.Row(c), centered)
		}
	}
}

// ProjectionDrift measures how well a set of rows fits this (frozen)
// eigenbasis: the mean relative squared reconstruction error of the
// selected rows when represented by their first k principal-component
// scores. Each row is normalized with the stored InputStats (so the
// metric is comparable to the basis's own training data), and its
// residual is the squared norm left over after removing the first k
// components' projections:
//
//	drift = mean_i( max(0, |z_i|² - Σ_c score_ic²) / |z_i|² )
//
// A row that lies inside the span of the retained components scores ~0;
// a row pointing somewhere the basis never saw scores toward 1. rows
// lists the row indices of data to evaluate; an empty list returns 0
// (nothing appended, nothing can have drifted). This is the incremental
// pipeline's frozen-basis gate: appended rows whose drift exceeds the
// configured threshold force a full PCA refit.
func (p *PCA) ProjectionDrift(data *Matrix, rows []int, k int) (float64, error) {
	if err := p.checkProject(data, k); err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, nil
	}
	centered := make([]float64, data.Cols)
	var total float64
	for _, i := range rows {
		if i < 0 || i >= data.Rows {
			return 0, fmt.Errorf("stats: drift row %d out of range [0,%d)", i, data.Rows)
		}
		row := data.Row(i)
		for j, v := range row {
			d := v - p.InputStats.Mean[j]
			if p.InputStats.Std[j] > 0 {
				d /= p.InputStats.Std[j]
			}
			centered[j] = d
		}
		norm2 := kernel.SquaredNorm(centered)
		if norm2 == 0 {
			continue // a row at the training mean fits any basis exactly
		}
		var proj2 float64
		for c := 0; c < k; c++ {
			s := kernel.Dot(p.Components.Row(c), centered)
			proj2 += s * s
		}
		resid := norm2 - proj2
		if resid < 0 {
			resid = 0 // rounding: the projection cannot exceed the norm
		}
		total += resid / norm2
	}
	return total / float64(len(rows)), nil
}

// RescaledScores projects data onto the first k components and then
// normalizes each score column to unit variance — the paper's "rescaled
// PCA space", which gives every retained underlying program characteristic
// equal weight in subsequent distance computations.
func (p *PCA) RescaledScores(data *Matrix, k int) (*Matrix, error) {
	scores, err := p.Project(data, k)
	if err != nil {
		return nil, err
	}
	rescaled, _ := scores.Normalize()
	return rescaled, nil
}

// jacobiWork holds the working set of one Jacobi eigendecomposition; the
// eigenvectors accumulate in vT with one eigenvector per ROW (the
// transpose of the classical column layout), which keeps every rotation
// update contiguous.
type jacobiWork struct {
	m    *Matrix
	vT   *Matrix
	vals []float64
}

// JacobiEigen computes all eigenvalues and eigenvectors of the symmetric
// matrix a using the cyclic Jacobi rotation method. It returns the
// eigenvalues and a matrix whose columns are the corresponding
// eigenvectors. a is not modified.
func JacobiEigen(a *Matrix, maxSweeps int, tol float64) ([]float64, *Matrix, error) {
	var w jacobiWork
	if err := jacobiEigenInto(a, maxSweeps, tol, &w); err != nil {
		return nil, nil, err
	}
	// Keep the documented columns-are-eigenvectors contract.
	n := a.Rows
	v := NewMatrix(n, n)
	kernel.Transpose(w.vT.Data, n, n, v.Data)
	return w.vals, v, nil
}

// jacobiEigenInto is JacobiEigen on caller-owned buffers, operating on
// flat slices instead of At/Set index arithmetic. Every rotation applies
// the same per-element expressions in the same order as the classical
// formulation (each element is read and written exactly once per pass),
// so results are bit-identical to it; only the eigenvector layout
// differs (w.vT rows are eigenvectors).
func jacobiEigenInto(a *Matrix, maxSweeps int, tol float64, w *jacobiWork) error {
	n := a.Rows
	if n != a.Cols {
		return fmt.Errorf("stats: Jacobi on non-square %dx%d matrix", a.Rows, a.Cols)
	}
	ad := a.Data
	// Verify symmetry (within tolerance scaled by magnitude).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x, y := ad[i*n+j], ad[j*n+i]
			d := math.Abs(x - y)
			scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
			if d > 1e-8*scale {
				return fmt.Errorf("stats: Jacobi on non-symmetric matrix (|a[%d,%d]-a[%d,%d]| = %g)", i, j, j, i, d)
			}
		}
	}

	w.m = growMatrixInto(w.m, n, n)
	w.vT = growMatrixInto(w.vT, n, n)
	w.vals = growFloats(w.vals, n)
	md, vtd := w.m.Data, w.vT.Data
	copy(md, ad)
	for i := range vtd {
		vtd[i] = 0
	}
	for i := 0; i < n; i++ {
		vtd[i*n+i] = 1
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal norm for convergence.
		var off float64
		for i := 0; i < n; i++ {
			row := md[i*n+i+1 : (i+1)*n]
			for _, v := range row {
				off += v * v
			}
		}
		if off < tol*tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := md[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := md[p*n+p]
				aqq := md[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply rotation J(p, q, theta): columns p and q of m...
				for k := 0; k < n; k++ {
					kp, kq := k*n+p, k*n+q
					akp, akq := md[kp], md[kq]
					md[kp] = c*akp - s*akq
					md[kq] = s*akp + c*akq
				}
				// ...then rows p and q (contiguous in the flat layout)...
				rowp := md[p*n : (p+1)*n : (p+1)*n]
				rowq := md[q*n : (q+1)*n : (q+1)*n]
				for k := 0; k < n; k++ {
					apk, aqk := rowp[k], rowq[k]
					rowp[k] = c*apk - s*aqk
					rowq[k] = s*apk + c*aqk
				}
				// ...and the eigenvector accumulator, whose transposed
				// layout makes this contiguous too.
				vp := vtd[p*n : (p+1)*n : (p+1)*n]
				vq := vtd[q*n : (q+1)*n : (q+1)*n]
				for k := 0; k < n; k++ {
					vkp, vkq := vp[k], vq[k]
					vp[k] = c*vkp - s*vkq
					vq[k] = s*vkp + c*vkq
				}
			}
		}
	}

	for i := 0; i < n; i++ {
		w.vals[i] = md[i*n+i]
	}
	return nil
}
