package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestJacobiKnownEigenvalues(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := JacobiEigen(m, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{vals[0], vals[1]}
	if got[0] < got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if !almostEq(got[0], 3, 1e-9) || !almostEq(got[1], 1, 1e-9) {
		t.Fatalf("eigenvalues = %v, want [3 1]", got)
	}
	// Eigenvectors orthonormal.
	dot := vecs.At(0, 0)*vecs.At(0, 1) + vecs.At(1, 0)*vecs.At(1, 1)
	if !almostEq(dot, 0, 1e-9) {
		t.Fatalf("eigenvectors not orthogonal: dot = %v", dot)
	}
}

func TestJacobiVerifiesEigenEquation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 8
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	vals, vecs, err := JacobiEigen(m, 200, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	// Check A v_k = lambda_k v_k for every k.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			var av float64
			for j := 0; j < n; j++ {
				av += m.At(i, j) * vecs.At(j, k)
			}
			if !almostEq(av, vals[k]*vecs.At(i, k), 1e-7) {
				t.Fatalf("eigen equation violated at (%d,%d): %v vs %v", i, k, av, vals[k]*vecs.At(i, k))
			}
		}
	}
	// Eigenvalue sum equals trace.
	var trace, sum float64
	for i := 0; i < n; i++ {
		trace += m.At(i, i)
		sum += vals[i]
	}
	if !almostEq(trace, sum, 1e-9) {
		t.Fatalf("eigenvalue sum %v != trace %v", sum, trace)
	}
}

func TestJacobiRejectsNonSquare(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, _, err := JacobiEigen(m, 10, 1e-9); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestJacobiRejectsAsymmetric(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := JacobiEigen(m, 10, 1e-9); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

// correlatedData builds rows where column 1 = 2*column 0 + noise and
// column 2 is independent noise.
func correlatedData(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		m.Set(i, 0, x)
		m.Set(i, 1, 2*x+0.01*rng.NormFloat64())
		m.Set(i, 2, rng.NormFloat64())
	}
	return m
}

func TestPCAOrdersVariance(t *testing.T) {
	pca, err := ComputePCA(correlatedData(500, 1), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pca.Variances); i++ {
		if pca.Variances[i] > pca.Variances[i-1]+1e-12 {
			t.Fatalf("variances not sorted: %v", pca.Variances)
		}
	}
	// Normalized 3-column data: total variance ~= 3.
	if !almostEq(pca.TotalVariance, 3, 0.05) {
		t.Fatalf("total variance = %v, want ~3", pca.TotalVariance)
	}
	// The correlated pair collapses onto one component: PC1 explains
	// about 2/3 of the variance.
	if frac := pca.ExplainedVariance(1); frac < 0.6 {
		t.Fatalf("PC1 explains only %.2f", frac)
	}
}

func TestPCANumRetained(t *testing.T) {
	pca, err := ComputePCA(correlatedData(500, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	// Components with std > 1: the merged pair (var ~2) and the noise
	// column (var ~1, hovering at the threshold); at minimum 1 retained.
	k := pca.NumRetained(1.0)
	if k < 1 || k > 2 {
		t.Fatalf("retained %d components", k)
	}
	if pca.NumRetained(1e9) != 1 {
		t.Fatal("NumRetained must floor at 1")
	}
}

func TestPCAProjectionDecorrelates(t *testing.T) {
	data := correlatedData(800, 3)
	pca, err := ComputePCA(data, true)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := pca.Project(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Score columns must be uncorrelated.
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			colA := make([]float64, scores.Rows)
			colB := make([]float64, scores.Rows)
			for i := 0; i < scores.Rows; i++ {
				colA[i] = scores.At(i, a)
				colB[i] = scores.At(i, b)
			}
			if r := Pearson(colA, colB); math.Abs(r) > 0.02 {
				t.Fatalf("score columns %d,%d correlated: %v", a, b, r)
			}
		}
	}
	// Score column variances equal the eigenvalues.
	cs := scores.ColumnMeansStds()
	for k := 0; k < 3; k++ {
		if !almostEq(cs.Std[k]*cs.Std[k], pca.Variances[k], 0.02*pca.Variances[k]+1e-6) {
			t.Fatalf("score var %d = %v, eigenvalue %v", k, cs.Std[k]*cs.Std[k], pca.Variances[k])
		}
	}
}

func TestRescaledScoresUnitVariance(t *testing.T) {
	data := correlatedData(400, 4)
	pca, err := ComputePCA(data, true)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := pca.RescaledScores(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	cs := scores.ColumnMeansStds()
	for k := 0; k < 2; k++ {
		if !almostEq(cs.Std[k], 1, 1e-9) {
			t.Fatalf("rescaled score std %d = %v", k, cs.Std[k])
		}
	}
}

func TestProjectValidation(t *testing.T) {
	data := correlatedData(50, 5)
	pca, err := ComputePCA(data, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pca.Project(NewMatrix(5, 2), 1); err == nil {
		t.Fatal("column mismatch accepted")
	}
	if _, err := pca.Project(data, 0); err == nil {
		t.Fatal("zero components accepted")
	}
	if _, err := pca.Project(data, 99); err == nil {
		t.Fatal("too many components accepted")
	}
}

func TestComputePCAValidation(t *testing.T) {
	if _, err := ComputePCA(NewMatrix(1, 3), true); err == nil {
		t.Fatal("single-row PCA accepted")
	}
	if _, err := ComputePCA(NewMatrix(5, 0), true); err == nil {
		t.Fatal("zero-column PCA accepted")
	}
}

func TestPCAUnnormalized(t *testing.T) {
	// Without normalization, a high-variance column dominates PC1.
	rng := rand.New(rand.NewSource(6))
	m := NewMatrix(300, 2)
	for i := 0; i < 300; i++ {
		m.Set(i, 0, 100*rng.NormFloat64())
		m.Set(i, 1, rng.NormFloat64())
	}
	pca, err := ComputePCA(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if pca.Variances[0] < 1000 {
		t.Fatalf("unnormalized PC1 variance = %v, should be dominated by the big column", pca.Variances[0])
	}
	// PC1 loading should point almost entirely along column 0.
	if math.Abs(pca.Components.At(0, 0)) < 0.99 {
		t.Fatalf("PC1 loading on the dominant column = %v", pca.Components.At(0, 0))
	}
}

func TestExplainedVarianceClamps(t *testing.T) {
	pca, err := ComputePCA(correlatedData(100, 7), true)
	if err != nil {
		t.Fatal(err)
	}
	if got := pca.ExplainedVariance(100); !almostEq(got, 1, 1e-9) {
		t.Fatalf("explained variance over all components = %v", got)
	}
}

// TestPCAEigenvalueTieBreak feeds ComputePCA data whose covariance is
// diagonal with one dominant eigenvalue and fifteen exactly equal ones.
// sort.Slice is unstable, so without the explicit index tie-break the
// tied components could land in any order; the contract is original
// eigenpair (dimension) order. On a diagonal covariance Jacobi performs
// no rotations, so each component must be exactly a basis vector.
func TestPCAEigenvalueTieBreak(t *testing.T) {
	const p = 16
	// Rows ±c_j·e_j give a centered dataset with covariance
	// diag(2c_j²/(2p-1)): dimension 0 dominant, the rest exactly tied.
	data := NewMatrix(2*p, p)
	for j := 0; j < p; j++ {
		c := 1.0
		if j == 0 {
			c = 3.0
		}
		data.Set(2*j, j, c)
		data.Set(2*j+1, j, -c)
	}
	run := func() *PCA {
		pca, err := ComputePCA(data, false)
		if err != nil {
			t.Fatal(err)
		}
		return pca
	}
	pca := run()
	for k := 1; k < p-1; k++ {
		if pca.Variances[k] != pca.Variances[k+1] {
			t.Fatalf("expected tied eigenvalues, got Variances[%d]=%v != Variances[%d]=%v",
				k, pca.Variances[k], k+1, pca.Variances[k+1])
		}
	}
	for k := 0; k < p; k++ {
		for j := 0; j < p; j++ {
			want := 0.0
			if j == k {
				want = 1.0
			}
			if got := math.Abs(pca.Components.At(k, j)); got != want {
				t.Fatalf("component %d is not basis vector e%d: |C[%d,%d]| = %v",
					k, k, k, j, pca.Components.At(k, j))
			}
		}
	}
	// And the whole analysis must be bit-identical across repeats.
	again := run()
	for i := range pca.Components.Data {
		if math.Float64bits(pca.Components.Data[i]) != math.Float64bits(again.Components.Data[i]) {
			t.Fatalf("repeated PCA differs at component element %d", i)
		}
	}
}
