package stats

// Running is a merge-able per-column statistics accumulator (Welford /
// Chan et al.): count, mean and the centered second moment M2 of every
// column, updatable one row at a time (Observe) or by folding in another
// accumulator (Merge). It is the incremental pipeline's answer to
// "timeline appends should fold into cached summaries": a persisted
// Running over the intervals already seen absorbs a batch of new
// intervals without revisiting the old vectors.
//
// Like everything the pipeline persists, the accumulator is exactly
// reproducible: Observe and Merge are plain sequential floating-point
// updates, so folding the same rows in the same order always produces
// bit-identical state. Different fold orders are numerically equivalent
// but not bit-equal — callers that need bit-stable artifacts (the
// cumulative timeline summary does) must fold deterministically, which
// the core package does by folding intervals in execution order.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Running accumulates per-column count/mean/M2. The zero value is not
// ready to use; construct with NewRunning.
type Running struct {
	// Count is how many rows have been folded in.
	Count int64
	// Mean is the running per-column mean.
	Mean []float64
	// M2 is the running per-column sum of squared deviations from the
	// mean; population variance is M2/Count.
	M2 []float64
}

// NewRunning returns an empty accumulator over cols columns.
func NewRunning(cols int) *Running {
	return &Running{Mean: make([]float64, cols), M2: make([]float64, cols)}
}

// Cols is the accumulator's column count.
func (r *Running) Cols() int { return len(r.Mean) }

// Observe folds one row into the accumulator (Welford's update).
func (r *Running) Observe(row []float64) error {
	if len(row) != len(r.Mean) {
		return fmt.Errorf("stats: observing %d-column row into %d-column accumulator", len(row), len(r.Mean))
	}
	r.Count++
	inv := 1 / float64(r.Count)
	for j, v := range row {
		d := v - r.Mean[j]
		r.Mean[j] += d * inv
		r.M2[j] += d * (v - r.Mean[j])
	}
	return nil
}

// Merge folds another accumulator into r (Chan et al.'s pairwise
// combination). o is not modified.
func (r *Running) Merge(o *Running) error {
	if len(o.Mean) != len(r.Mean) {
		return fmt.Errorf("stats: merging %d-column accumulator into %d columns", len(o.Mean), len(r.Mean))
	}
	if o.Count == 0 {
		return nil
	}
	if r.Count == 0 {
		r.Count = o.Count
		copy(r.Mean, o.Mean)
		copy(r.M2, o.M2)
		return nil
	}
	n1, n2 := float64(r.Count), float64(o.Count)
	total := n1 + n2
	for j := range r.Mean {
		delta := o.Mean[j] - r.Mean[j]
		r.Mean[j] += delta * (n2 / total)
		r.M2[j] += o.M2[j] + delta*delta*(n1*n2/total)
	}
	r.Count += o.Count
	return nil
}

// Stats renders the accumulator as ColumnStats with the population
// standard deviation — the same convention as Matrix.ColumnMeansStds, so
// a Running folded over a matrix's rows in row order agrees with the
// matrix's own summary up to floating-point accumulation order.
func (r *Running) Stats() ColumnStats {
	cs := ColumnStats{Mean: make([]float64, len(r.Mean)), Std: make([]float64, len(r.M2))}
	copy(cs.Mean, r.Mean)
	if r.Count > 0 {
		inv := 1 / float64(r.Count)
		for j, m2 := range r.M2 {
			cs.Std[j] = math.Sqrt(math.Max(m2, 0) * inv)
		}
	}
	return cs
}

// AppendBinary appends r's encoding to buf and returns the extended
// slice. The layout is count (u64), cols (u32), then the mean and M2
// columns as IEEE-754 bits — bit-exact round trip.
func (r *Running) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Count))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Mean)))
	for _, v := range r.Mean {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range r.M2 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// MarshalBinary encodes the accumulator (encoding.BinaryMarshaler).
func (r *Running) MarshalBinary() ([]byte, error) {
	return r.AppendBinary(make([]byte, 0, 12+16*len(r.Mean))), nil
}

// DecodeRunning consumes one encoded accumulator from the front of buf
// and returns it with the remaining bytes.
func DecodeRunning(buf []byte) (*Running, []byte, error) {
	if len(buf) < 12 {
		return nil, nil, fmt.Errorf("stats: running-stats header truncated (%d bytes)", len(buf))
	}
	count := int64(binary.LittleEndian.Uint64(buf))
	cols := int(binary.LittleEndian.Uint32(buf[8:]))
	buf = buf[12:]
	if count < 0 {
		return nil, nil, fmt.Errorf("stats: running stats with negative count %d", count)
	}
	if cols < 0 || len(buf) < 16*cols {
		return nil, nil, fmt.Errorf("stats: %d running-stats columns do not fit %d bytes", cols, len(buf))
	}
	r := NewRunning(cols)
	r.Count = count
	for j := range r.Mean {
		r.Mean[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
	}
	buf = buf[8*cols:]
	for j := range r.M2 {
		r.M2[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
	}
	return r, buf[8*cols:], nil
}

// UnmarshalBinary decodes an accumulator encoded by MarshalBinary,
// rejecting trailing bytes (encoding.BinaryUnmarshaler).
func (r *Running) UnmarshalBinary(data []byte) error {
	dec, rest, err := DecodeRunning(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("stats: %d trailing bytes after running stats", len(rest))
	}
	*r = *dec
	return nil
}
