package stats

import (
	"math"
	"testing"
)

// TestRunningMatchesColumnMeansStds pins the accumulator against the
// batch implementation: one Observe per row must land on the same
// per-column mean and population standard deviation (to float64 noise).
func TestRunningMatchesColumnMeansStds(t *testing.T) {
	m := NewMatrix(37, 5)
	rng := uint64(0x9e3779b97f4a7c15)
	for i := range m.Data {
		rng = rng*6364136223846793005 + 1442695040888963407
		m.Data[i] = float64(rng>>11) / float64(1<<53) * 100
	}
	r := NewRunning(m.Cols)
	for i := 0; i < m.Rows; i++ {
		if err := r.Observe(m.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := m.ColumnMeansStds()
	got := r.Stats()
	for j := 0; j < m.Cols; j++ {
		if math.Abs(got.Mean[j]-want.Mean[j]) > 1e-9 {
			t.Fatalf("col %d mean %g, want %g", j, got.Mean[j], want.Mean[j])
		}
		if math.Abs(got.Std[j]-want.Std[j]) > 1e-9 {
			t.Fatalf("col %d std %g, want %g", j, got.Std[j], want.Std[j])
		}
	}
}

// TestRunningMergeEqualsWholeObserve is the merge-ability contract:
// splitting the rows across two accumulators and merging must match
// observing everything in one (to float64 noise), for any split point —
// including a merge into or from an empty accumulator.
func TestRunningMergeEqualsWholeObserve(t *testing.T) {
	m := NewMatrix(25, 3)
	for i := range m.Data {
		m.Data[i] = float64((i*2654435761)%1000) / 17
	}
	whole := NewRunning(m.Cols)
	for i := 0; i < m.Rows; i++ {
		whole.Observe(m.Row(i))
	}
	wantS := whole.Stats()
	for split := 0; split <= m.Rows; split += 5 {
		a, b := NewRunning(m.Cols), NewRunning(m.Cols)
		for i := 0; i < split; i++ {
			a.Observe(m.Row(i))
		}
		for i := split; i < m.Rows; i++ {
			b.Observe(m.Row(i))
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if a.Count != whole.Count {
			t.Fatalf("split %d: count %d, want %d", split, a.Count, whole.Count)
		}
		gotS := a.Stats()
		for j := 0; j < m.Cols; j++ {
			if math.Abs(gotS.Mean[j]-wantS.Mean[j]) > 1e-9 || math.Abs(gotS.Std[j]-wantS.Std[j]) > 1e-9 {
				t.Fatalf("split %d col %d: mean/std %g/%g, want %g/%g",
					split, j, gotS.Mean[j], gotS.Std[j], wantS.Mean[j], wantS.Std[j])
			}
		}
	}
}

func TestRunningDimensionMismatch(t *testing.T) {
	r := NewRunning(3)
	if err := r.Observe([]float64{1, 2}); err == nil {
		t.Fatal("short row observed")
	}
	if err := r.Merge(NewRunning(4)); err == nil {
		t.Fatal("mismatched merge succeeded")
	}
}

// TestRunningCodec round-trips the binary encoding and rejects
// truncation and trailing bytes.
func TestRunningCodec(t *testing.T) {
	r := NewRunning(4)
	for i := 0; i < 9; i++ {
		r.Observe([]float64{float64(i), -float64(i), 0.5 * float64(i), 1e9 + float64(i)})
	}
	buf, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	out := &Running{}
	if err := out.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if out.Count != r.Count {
		t.Fatalf("count %d, want %d", out.Count, r.Count)
	}
	for j := range r.Mean {
		if out.Mean[j] != r.Mean[j] || out.M2[j] != r.M2[j] {
			t.Fatalf("col %d: %g/%g, want %g/%g", j, out.Mean[j], out.M2[j], r.Mean[j], r.M2[j])
		}
	}
	for cut := 1; cut < len(buf); cut += 3 {
		if err := (&Running{}).UnmarshalBinary(buf[:len(buf)-cut]); err == nil {
			t.Fatalf("truncation by %d decoded", cut)
		}
	}
	if err := (&Running{}).UnmarshalBinary(append(buf, 7)); err == nil {
		t.Fatal("trailing byte decoded")
	}
}
