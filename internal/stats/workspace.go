// PCAWorkspace: buffer reuse for the PCA -> rescale -> pairwise-distance
// chain. The GA fitness function runs that chain once per genome
// evaluation — tens of thousands of times per sweep — and every stage
// used to allocate its result afresh. A workspace owns one reusable
// buffer per stage; repeated evaluations overwrite instead of
// reallocating. Results computed through a workspace are bit-identical
// to the plain entry points (both run the same helper code on fully
// overwritten buffers); only the allocation behavior differs.
package stats

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
)

// growFloats is kernel.GrowFloats under its historical local name; the
// shared implementation lives in internal/kernel so cluster and stats
// stop carrying duplicate copies.
func growFloats(s []float64, n int) []float64 { return kernel.GrowFloats(s, n) }

// GrowMatrix returns a rows x cols matrix backed by m's Data when it is
// large enough, allocating a fresh matrix otherwise. Contents are
// unspecified; callers fully overwrite before reading. It is the Matrix
// counterpart of kernel.GrowFloats/GrowInts and is shared with the
// cluster package's pooled scratch.
func GrowMatrix(m *Matrix, rows, cols int) *Matrix {
	if m == nil || cap(m.Data) < rows*cols {
		return NewMatrix(rows, cols)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:rows*cols]
	return m
}

func growMatrixInto(m *Matrix, rows, cols int) *Matrix { return GrowMatrix(m, rows, cols) }

// PCAWorkspace holds reusable buffers for the analysis chain. The zero
// value is ready to use. Results returned by its methods alias the
// workspace and are valid only until the next call on the same
// workspace; a workspace must not be used concurrently.
type PCAWorkspace struct {
	sel      *Matrix
	work     *Matrix
	cov      *Matrix
	scores   *Matrix
	rescaled *Matrix
	inCS     ColumnStats
	covCS    ColumnStats
	scoreCS  ColumnStats
	jw       jacobiWork
	order    []int
	pca      PCA
	centered []float64
	dist     []float64
}

// SelectColumns is Matrix.SelectColumns into a reused buffer.
func (w *PCAWorkspace) SelectColumns(m *Matrix, cols []int) (*Matrix, error) {
	for _, c := range cols {
		if c < 0 || c >= m.Cols {
			return nil, fmt.Errorf("stats: column %d out of range [0,%d)", c, m.Cols)
		}
	}
	w.sel = growMatrixInto(w.sel, m.Rows, len(cols))
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := w.sel.Row(i)
		for j, c := range cols {
			dst[j] = src[c]
		}
	}
	return w.sel, nil
}

// ComputePCA is the package-level ComputePCA on reused buffers. The
// returned PCA (and its Components/Variances/InputStats) aliases the
// workspace.
func (w *PCAWorkspace) ComputePCA(data *Matrix, normalize bool) (*PCA, error) {
	if data.Rows < 2 {
		return nil, fmt.Errorf("stats: PCA needs at least 2 rows, have %d", data.Rows)
	}
	if data.Cols < 1 {
		return nil, fmt.Errorf("stats: PCA needs at least 1 column")
	}
	w.work = growMatrixInto(w.work, data.Rows, data.Cols)
	data.columnMeansStdsInto(&w.inCS)
	if !normalize {
		// Center only (PCA is defined on centered data): a unit std
		// makes normalizeInto divide by exactly 1, a no-op bit for bit.
		for j := range w.inCS.Std {
			w.inCS.Std[j] = 1
		}
	}
	data.normalizeInto(w.work, &w.inCS)

	p := data.Cols
	w.cov = growMatrixInto(w.cov, p, p)
	w.work.covarianceInto(w.cov, &w.covCS)
	if err := jacobiEigenInto(w.cov, 200, 1e-12, &w.jw); err != nil {
		return nil, err
	}
	vals := w.jw.vals

	// Sort eigenpairs by decreasing eigenvalue. sort.Slice is unstable,
	// so exactly equal eigenvalues (rank-deficient or symmetric data)
	// need an explicit tie-break on the original eigenpair index to keep
	// the component order deterministic.
	if cap(w.order) < p {
		w.order = make([]int, p)
	}
	order := w.order[:p]
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := vals[order[a]], vals[order[b]]
		if va != vb {
			return va > vb
		}
		return order[a] < order[b]
	})

	w.pca = PCA{
		Components: growMatrixInto(w.pca.Components, p, p),
		Variances:  growFloats(w.pca.Variances, p),
		InputStats: w.inCS,
	}
	w.pca.TotalVariance = 0
	for k, idx := range order {
		v := vals[idx]
		if v < 0 && v > -1e-10 {
			v = 0 // numerical noise on rank-deficient data
		}
		w.pca.Variances[k] = v
		w.pca.TotalVariance += v
		// Eigenvector idx is row idx of the transposed accumulator.
		copy(w.pca.Components.Row(k), w.jw.vT.Row(idx))
	}
	return &w.pca, nil
}

// RescaledScores is PCA.RescaledScores on reused buffers; p is typically
// the result of this workspace's ComputePCA. The returned matrix aliases
// the workspace.
func (w *PCAWorkspace) RescaledScores(p *PCA, data *Matrix, k int) (*Matrix, error) {
	if err := p.checkProject(data, k); err != nil {
		return nil, err
	}
	w.scores = growMatrixInto(w.scores, data.Rows, k)
	w.centered = growFloats(w.centered, data.Cols)
	p.projectInto(data, k, w.scores, w.centered)
	w.scores.columnMeansStdsInto(&w.scoreCS)
	w.rescaled = growMatrixInto(w.rescaled, data.Rows, k)
	w.scores.normalizeInto(w.rescaled, &w.scoreCS)
	return w.rescaled, nil
}

// PairwiseDistances is the package-level PairwiseDistances into a reused
// buffer (serial, like the plain single-worker path).
func (w *PCAWorkspace) PairwiseDistances(m *Matrix) []float64 {
	n := m.Rows
	w.dist = growFloats(w.dist, n*(n-1)/2)
	out := w.dist
	for i := 0; i < n; i++ {
		ri := m.Row(i)
		base := i*(n-1) - i*(i-1)/2 - i - 1 // + j = slot of pair (i, j)
		for j := i + 1; j < n; j++ {
			out[base+j] = EuclideanDistance(ri, m.Row(j))
		}
	}
	return out
}
