package trace

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// MixSpec holds relative weights for each operation class. Weights need not
// sum to one; the generator normalizes them. The zero value is invalid (no
// weight anywhere).
type MixSpec [isa.NumOpClasses]float64

// Normalize returns a copy scaled to sum to 1. It returns an error if no
// class has positive weight.
func (m MixSpec) Normalize() (MixSpec, error) {
	var total float64
	for _, w := range m {
		if w < 0 {
			return m, fmt.Errorf("trace: negative mix weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return m, fmt.Errorf("trace: empty instruction mix")
	}
	for i := range m {
		m[i] /= total
	}
	return m, nil
}

// Set assigns weight w to class c and returns the modified spec, enabling
// fluent construction.
func (m MixSpec) Set(c isa.OpClass, w float64) MixSpec {
	m[c] = w
	return m
}

// BaseMix returns a generic scalar-code mix that individual behaviours
// adjust: mostly integer ALU with moderate memory and branch traffic.
func BaseMix() MixSpec {
	var m MixSpec
	m[isa.OpLoad] = 0.20
	m[isa.OpStore] = 0.09
	m[isa.OpBranchCond] = 0.12
	m[isa.OpBranchJump] = 0.02
	m[isa.OpCall] = 0.01
	m[isa.OpReturn] = 0.01
	m[isa.OpIntAdd] = 0.28
	m[isa.OpIntMul] = 0.01
	m[isa.OpLogic] = 0.07
	m[isa.OpShift] = 0.05
	m[isa.OpCompare] = 0.08
	m[isa.OpMove] = 0.05
	m[isa.OpOther] = 0.01
	return m
}

// FPBaseMix returns a generic floating-point-loop mix.
func FPBaseMix() MixSpec {
	var m MixSpec
	m[isa.OpLoad] = 0.26
	m[isa.OpStore] = 0.10
	m[isa.OpBranchCond] = 0.04
	m[isa.OpBranchJump] = 0.01
	m[isa.OpFPAdd] = 0.24
	m[isa.OpFPMul] = 0.18
	m[isa.OpFPDiv] = 0.01
	m[isa.OpIntAdd] = 0.10
	m[isa.OpCompare] = 0.02
	m[isa.OpMove] = 0.03
	m[isa.OpConvert] = 0.01
	return m
}

// BranchSpec describes conditional-branch behaviour of a phase.
//
// Each static branch is assigned (deterministically, by hashing its PC) a
// period derived from PatternPeriod; its outcome stream is then a periodic
// loop-style pattern (taken for period-1 iterations, not-taken once — or the
// inverse for low TakenBias) perturbed by NoiseLevel. PatternPeriod == 0
// makes outcomes Bernoulli(TakenBias) — essentially unpredictable for
// TakenBias near 0.5.
type BranchSpec struct {
	// TakenBias is the target fraction of taken outcomes in [0, 1].
	TakenBias float64
	// PatternPeriod is the mean period of the per-branch repeating
	// pattern; 0 disables patterns (pure Bernoulli outcomes).
	PatternPeriod int
	// NoiseLevel is the probability that a patterned outcome is flipped.
	NoiseLevel float64
}

// RegDepSpec describes register traffic and dependence structure.
type RegDepSpec struct {
	// MeanDepDist is the mean register dependency distance (instructions
	// between production and consumption); sampled geometrically.
	MeanDepDist float64
	// AvgSrcRegs is the average number of register input operands per
	// instruction, in [0, isa.MaxSrcRegs].
	AvgSrcRegs float64
	// WriteFraction is the fraction of instructions producing a register
	// value; degree of use ~= AvgSrcRegs/WriteFraction.
	WriteFraction float64
}

// PatternKind selects how an AccessPattern walks its region.
type PatternKind uint8

const (
	// PatternStride walks the region with a fixed stride, wrapping.
	PatternStride PatternKind = iota
	// PatternRandom touches uniformly random 8-byte-aligned locations.
	PatternRandom
	// PatternChase performs a deterministic pseudo-random permutation
	// walk (pointer chasing): random-looking strides but a footprint that
	// grows linearly like a strided walk.
	PatternChase
)

func (k PatternKind) String() string {
	switch k {
	case PatternStride:
		return "stride"
	case PatternRandom:
		return "random"
	case PatternChase:
		return "chase"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(k))
	}
}

// AccessPattern describes one component of a phase's load or store address
// stream.
type AccessPattern struct {
	// Kind selects the walk.
	Kind PatternKind
	// Weight is the fraction of accesses served by this pattern,
	// relative to its siblings.
	Weight float64
	// Region is the working-set size in bytes touched by this pattern.
	Region uint64
	// Stride is the byte stride for PatternStride.
	Stride uint64
}

// Validate reports structural problems with the pattern.
func (p AccessPattern) Validate() error {
	if p.Weight < 0 {
		return fmt.Errorf("trace: pattern weight %v < 0", p.Weight)
	}
	if p.Region == 0 {
		return fmt.Errorf("trace: pattern with zero region")
	}
	if p.Kind == PatternStride && p.Stride == 0 {
		return fmt.Errorf("trace: stride pattern with zero stride")
	}
	return nil
}

// PhaseBehavior is the complete behavioural description of one program
// phase. It is the unit the synthetic-workload generator consumes: every
// instruction interval is generated from exactly one PhaseBehavior (plus a
// seed and a small amount of per-interval jitter).
type PhaseBehavior struct {
	// Name identifies the phase in diagnostics, e.g. "grappa/kernel".
	Name string

	// Mix is the instruction-class distribution.
	Mix MixSpec

	// CodeSize is the static code footprint in instructions; the dynamic
	// program counter walks loops and functions inside this region.
	CodeSize int

	// Branch describes conditional-branch outcome behaviour.
	Branch BranchSpec

	// Reg describes register traffic and dependence distances.
	Reg RegDepSpec

	// Loads and Stores describe the data address streams.
	Loads  []AccessPattern
	Stores []AccessPattern

	// Jitter is the relative per-interval perturbation (0–~0.3) applied
	// to continuous parameters so intervals of one phase are similar but
	// not identical.
	Jitter float64
}

// Validate checks the behaviour for structural errors.
func (b *PhaseBehavior) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("trace: phase with empty name")
	}
	if _, err := b.Mix.Normalize(); err != nil {
		return fmt.Errorf("phase %s: %w", b.Name, err)
	}
	if b.CodeSize <= 0 {
		return fmt.Errorf("phase %s: non-positive code size", b.Name)
	}
	if b.Branch.TakenBias < 0 || b.Branch.TakenBias > 1 {
		return fmt.Errorf("phase %s: taken bias %v out of [0,1]", b.Name, b.Branch.TakenBias)
	}
	if b.Branch.NoiseLevel < 0 || b.Branch.NoiseLevel > 1 {
		return fmt.Errorf("phase %s: noise level %v out of [0,1]", b.Name, b.Branch.NoiseLevel)
	}
	if b.Reg.AvgSrcRegs < 0 || b.Reg.AvgSrcRegs > float64(isa.MaxSrcRegs) {
		return fmt.Errorf("phase %s: avg src regs %v out of range", b.Name, b.Reg.AvgSrcRegs)
	}
	if b.Reg.WriteFraction <= 0 || b.Reg.WriteFraction > 1 {
		return fmt.Errorf("phase %s: write fraction %v out of (0,1]", b.Name, b.Reg.WriteFraction)
	}
	if b.Reg.MeanDepDist < 1 {
		return fmt.Errorf("phase %s: mean dependency distance %v < 1", b.Name, b.Reg.MeanDepDist)
	}
	if len(b.Loads) == 0 {
		return fmt.Errorf("phase %s: no load patterns", b.Name)
	}
	if len(b.Stores) == 0 {
		return fmt.Errorf("phase %s: no store patterns", b.Name)
	}
	for _, p := range b.Loads {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("phase %s loads: %w", b.Name, err)
		}
	}
	for _, p := range b.Stores {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("phase %s stores: %w", b.Name, err)
		}
	}
	return nil
}

// jittered returns a copy of b with continuous parameters perturbed by the
// phase's jitter amount, using r. Structural parameters (pattern kinds,
// counts) are preserved.
func (b *PhaseBehavior) jittered(r *RNG) PhaseBehavior {
	j := *b
	if b.Jitter <= 0 {
		return j
	}
	a := b.Jitter
	for i := range j.Mix {
		j.Mix[i] = r.Jitter(j.Mix[i], a)
	}
	j.Branch.TakenBias = clamp01(r.Jitter(j.Branch.TakenBias, a/2))
	j.Branch.NoiseLevel = clamp01(r.Jitter(j.Branch.NoiseLevel, a))
	j.Reg.MeanDepDist = maxf(1, r.Jitter(j.Reg.MeanDepDist, a))
	j.Reg.AvgSrcRegs = clampf(r.Jitter(j.Reg.AvgSrcRegs, a/2), 0, float64(isa.MaxSrcRegs))
	j.Reg.WriteFraction = clampf(r.Jitter(j.Reg.WriteFraction, a/2), 0.05, 1)
	j.Loads = jitterPatterns(j.Loads, r, a)
	j.Stores = jitterPatterns(j.Stores, r, a)
	return j
}

func jitterPatterns(ps []AccessPattern, r *RNG, a float64) []AccessPattern {
	out := make([]AccessPattern, len(ps))
	copy(out, ps)
	for i := range out {
		out[i].Weight = r.Jitter(out[i].Weight, a)
		reg := r.Jitter(float64(out[i].Region), a)
		if reg < 64 {
			reg = 64
		}
		out[i].Region = uint64(reg)
	}
	return out
}

func clamp01(v float64) float64 { return clampf(v, 0, 1) }

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// BehaviorHash folds EVERY stream-affecting parameter of the behaviour
// into one 64-bit value: two behaviours with equal hashes produce (with
// the same seed and length) the identical instruction stream, because the
// generator's output is a pure function of exactly these fields. Unlike
// paramHash below — which deliberately drops data-side parameters to model
// cross-benchmark code sharing — this hash must change whenever any knob
// that can alter a single generated instruction changes. Name is excluded:
// it never reaches the generator. It is the behaviour component of the
// interval-vector cache key (internal/fcache).
func (b *PhaseBehavior) BehaviorHash() uint64 {
	h := uint64(0xa0761d6478bd642f)
	mix := func(v uint64) {
		h = Hash64(h ^ v)
	}
	f := func(v float64) { mix(math.Float64bits(v)) }
	for _, w := range b.Mix {
		f(w)
	}
	mix(uint64(b.CodeSize))
	f(b.Branch.TakenBias)
	mix(uint64(b.Branch.PatternPeriod))
	f(b.Branch.NoiseLevel)
	f(b.Reg.MeanDepDist)
	f(b.Reg.AvgSrcRegs)
	f(b.Reg.WriteFraction)
	for _, ps := range [][]AccessPattern{b.Loads, b.Stores} {
		mix(uint64(len(ps)))
		for _, p := range ps {
			mix(uint64(p.Kind))
			f(p.Weight)
			mix(p.Region)
			mix(p.Stride)
		}
	}
	f(b.Jitter)
	return h
}

// paramHash folds the CODE-shaped behavioural parameters into one 64-bit
// value: instruction mix, code size, branch behaviour, register structure,
// and the memory-pattern kinds. Two phases with identical code-shaped
// parameters hash identically, so the generator gives them the same
// synthetic static code — the basis for cross-benchmark phase similarity.
// Data-region sizes, strides and pattern weights are deliberately
// excluded: the same program processing a different input keeps its code.
func (b *PhaseBehavior) paramHash() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	mix := func(v uint64) {
		h = Hash64(h ^ v)
	}
	f := func(v float64) { mix(math.Float64bits(v)) }
	for _, w := range b.Mix {
		f(w)
	}
	mix(uint64(b.CodeSize))
	// Branch outcome parameters (taken bias, noise) are data-dependent
	// and excluded; the pattern period reflects loop structure and stays.
	mix(uint64(b.Branch.PatternPeriod))
	f(b.Reg.MeanDepDist)
	f(b.Reg.AvgSrcRegs)
	f(b.Reg.WriteFraction)
	for _, ps := range [][]AccessPattern{b.Loads, b.Stores} {
		mix(uint64(len(ps)))
		for _, p := range ps {
			mix(uint64(p.Kind))
		}
	}
	return h
}
