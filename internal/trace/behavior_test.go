package trace

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// validBehavior returns a minimal valid phase for mutation in tests.
func validBehavior() PhaseBehavior {
	return PhaseBehavior{
		Name:     "test/phase",
		Mix:      BaseMix(),
		CodeSize: 1000,
		Branch:   BranchSpec{TakenBias: 0.6, PatternPeriod: 8, NoiseLevel: 0.1},
		Reg:      RegDepSpec{MeanDepDist: 4, AvgSrcRegs: 1.5, WriteFraction: 0.7},
		Loads:    []AccessPattern{{Kind: PatternStride, Weight: 1, Region: 1 << 16, Stride: 8}},
		Stores:   []AccessPattern{{Kind: PatternRandom, Weight: 1, Region: 1 << 14}},
		Jitter:   0.05,
	}
}

func TestValidBehaviorValidates(t *testing.T) {
	b := validBehavior()
	if err := b.Validate(); err != nil {
		t.Fatalf("valid behaviour rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*PhaseBehavior)
		want string
	}{
		{"empty name", func(b *PhaseBehavior) { b.Name = "" }, "empty name"},
		{"empty mix", func(b *PhaseBehavior) { b.Mix = MixSpec{} }, "mix"},
		{"negative mix", func(b *PhaseBehavior) { b.Mix[0] = -1 }, "negative"},
		{"zero code", func(b *PhaseBehavior) { b.CodeSize = 0 }, "code size"},
		{"bias too high", func(b *PhaseBehavior) { b.Branch.TakenBias = 1.5 }, "taken bias"},
		{"bias negative", func(b *PhaseBehavior) { b.Branch.TakenBias = -0.1 }, "taken bias"},
		{"noise too high", func(b *PhaseBehavior) { b.Branch.NoiseLevel = 2 }, "noise"},
		{"src regs too many", func(b *PhaseBehavior) { b.Reg.AvgSrcRegs = 10 }, "src regs"},
		{"zero write fraction", func(b *PhaseBehavior) { b.Reg.WriteFraction = 0 }, "write fraction"},
		{"dep dist below one", func(b *PhaseBehavior) { b.Reg.MeanDepDist = 0.5 }, "dependency distance"},
		{"no loads", func(b *PhaseBehavior) { b.Loads = nil }, "no load"},
		{"no stores", func(b *PhaseBehavior) { b.Stores = nil }, "no store"},
		{"zero region", func(b *PhaseBehavior) { b.Loads[0].Region = 0 }, "zero region"},
		{"zero stride", func(b *PhaseBehavior) { b.Loads[0].Stride = 0 }, "zero stride"},
		{"negative weight", func(b *PhaseBehavior) { b.Loads[0].Weight = -1 }, "weight"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := validBehavior()
			// Deep-copy patterns so mutations don't leak across cases.
			b.Loads = append([]AccessPattern(nil), b.Loads...)
			b.Stores = append([]AccessPattern(nil), b.Stores...)
			tt.mut(&b)
			err := b.Validate()
			if err == nil {
				t.Fatal("invalid behaviour accepted")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestMixNormalize(t *testing.T) {
	var m MixSpec
	m[isa.OpLoad] = 2
	m[isa.OpStore] = 2
	n, err := m.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n[isa.OpLoad] != 0.5 || n[isa.OpStore] != 0.5 {
		t.Fatalf("normalized mix = %v/%v, want 0.5/0.5", n[isa.OpLoad], n[isa.OpStore])
	}
	// The receiver must be unchanged (value semantics).
	if m[isa.OpLoad] != 2 {
		t.Fatal("Normalize mutated its receiver")
	}
}

func TestMixSet(t *testing.T) {
	m := BaseMix().Set(isa.OpFPSqrt, 0.25)
	if m[isa.OpFPSqrt] != 0.25 {
		t.Fatalf("Set did not assign: %v", m[isa.OpFPSqrt])
	}
}

func TestBaseMixesNormalize(t *testing.T) {
	for name, m := range map[string]MixSpec{"base": BaseMix(), "fp": FPBaseMix()} {
		n, err := m.Normalize()
		if err != nil {
			t.Fatalf("%s mix invalid: %v", name, err)
		}
		var sum float64
		for _, w := range n {
			sum += w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s mix normalizes to %v", name, sum)
		}
	}
}

func TestPatternKindString(t *testing.T) {
	if PatternStride.String() != "stride" || PatternRandom.String() != "random" || PatternChase.String() != "chase" {
		t.Fatal("pattern kind names wrong")
	}
	if got := PatternKind(9).String(); got != "pattern(9)" {
		t.Fatalf("unknown pattern kind = %q", got)
	}
}

func TestJitteredStaysValidAndBounded(t *testing.T) {
	b := validBehavior()
	b.Jitter = 0.3
	r := NewRNG(99)
	for i := 0; i < 200; i++ {
		j := b.jittered(r)
		if err := j.Validate(); err != nil {
			t.Fatalf("jittered behaviour invalid: %v", err)
		}
		if j.Branch.TakenBias < 0 || j.Branch.TakenBias > 1 {
			t.Fatalf("jittered taken bias %v out of range", j.Branch.TakenBias)
		}
		if j.Reg.MeanDepDist < 1 {
			t.Fatalf("jittered dep dist %v below 1", j.Reg.MeanDepDist)
		}
		if j.CodeSize != b.CodeSize {
			t.Fatal("jitter must not change structural code size")
		}
		if len(j.Loads) != len(b.Loads) {
			t.Fatal("jitter must not change pattern count")
		}
	}
}

func TestJitterZeroIsIdentity(t *testing.T) {
	b := validBehavior()
	b.Jitter = 0
	j := b.jittered(NewRNG(1))
	if j.Branch.TakenBias != b.Branch.TakenBias || j.Reg.MeanDepDist != b.Reg.MeanDepDist {
		t.Fatal("zero jitter changed parameters")
	}
}

func TestJitteredDoesNotMutateOriginal(t *testing.T) {
	b := validBehavior()
	b.Jitter = 0.3
	before := b.Loads[0].Region
	_ = b.jittered(NewRNG(4))
	if b.Loads[0].Region != before {
		t.Fatal("jittered mutated the original pattern slice")
	}
}

func TestParamHashIgnoresName(t *testing.T) {
	a := validBehavior()
	b := validBehavior()
	b.Name = "totally/different"
	if a.paramHash() != b.paramHash() {
		t.Fatal("paramHash must ignore the phase name (twin phases share static code)")
	}
}

func TestParamHashIgnoresDataParameters(t *testing.T) {
	// The same code processing a bigger input keeps its static layout.
	a := validBehavior()
	b := validBehavior()
	b.Loads = append([]AccessPattern(nil), b.Loads...)
	b.Loads[0].Region *= 4
	b.Loads[0].Stride = 16
	b.Loads[0].Weight *= 2
	b.Branch.TakenBias += 0.05 // data-dependent outcome shift
	b.Branch.NoiseLevel += 0.05
	if a.paramHash() != b.paramHash() {
		t.Fatal("paramHash must ignore data-dependent parameters")
	}
}

func TestParamHashSensitiveToParameters(t *testing.T) {
	base := validBehavior()
	mutations := []func(*PhaseBehavior){
		func(b *PhaseBehavior) { b.Mix[0] += 0.01 },
		func(b *PhaseBehavior) { b.CodeSize++ },
		func(b *PhaseBehavior) { b.Branch.PatternPeriod++ },
		func(b *PhaseBehavior) { b.Reg.MeanDepDist++ },
		func(b *PhaseBehavior) { b.Stores = append(b.Stores, b.Stores[0]) },
	}
	for i, mut := range mutations {
		m := validBehavior()
		m.Loads = append([]AccessPattern(nil), m.Loads...)
		m.Stores = append([]AccessPattern(nil), m.Stores...)
		mut(&m)
		if m.paramHash() == base.paramHash() {
			t.Errorf("mutation %d did not change paramHash", i)
		}
	}
}

func TestTwinPhasesGenerateIdenticalStreams(t *testing.T) {
	// Two behaviours that differ only by name must produce identical
	// instruction streams for the same seed — the mechanism behind
	// cross-suite phase twins.
	a := validBehavior()
	b := validBehavior()
	b.Name = "other/name"
	ga, err := NewGenerator(&a, 9)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := NewGenerator(&b, 9)
	if err != nil {
		t.Fatal(err)
	}
	var ia, ib isa.Instruction
	for i := 0; i < 5000; i++ {
		ga.Next(&ia)
		gb.Next(&ib)
		if ia != ib {
			t.Fatalf("twin streams diverged at %d:\n%v\n%v", i, &ia, &ib)
		}
	}
}
