package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Binary trace encoding: a compact, stream-oriented format so synthetic
// traces can be stored, exchanged and re-analyzed (the workflow MICA users
// have with PIN-generated traces). The format is:
//
//	magic "MTR1" (4 bytes)
//	per instruction:
//	  uvarint  PC
//	  byte     op class
//	  byte     dst register
//	  byte     nsrc, then nsrc source-register bytes
//	  uvarint  addr   (loads/stores only)
//	  byte     taken  (control only; 0/1)
//	  uvarint  target (control only)
//
// PCs and addresses are delta-encoded against the previous instruction's
// values (zig-zag), which makes loop-heavy streams highly compressible by
// the varint layer alone.

var traceMagic = [4]byte{'M', 'T', 'R', '1'}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// Writer serializes instructions to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	buf      []byte
	lastPC   uint64
	lastAddr uint64
	started  bool
	count    uint64
}

// NewWriter starts a trace stream on w (writing the magic header lazily on
// the first instruction).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), buf: make([]byte, binary.MaxVarintLen64)}
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(v uint64) int64  { return int64(v>>1) ^ -int64(v&1) }

func (w *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf, v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Write appends one instruction to the stream.
func (w *Writer) Write(ins *isa.Instruction) error {
	if !w.started {
		if _, err := w.w.Write(traceMagic[:]); err != nil {
			return err
		}
		w.started = true
	}
	if err := w.uvarint(zigzag(int64(ins.PC) - int64(w.lastPC))); err != nil {
		return err
	}
	w.lastPC = ins.PC
	if err := w.w.WriteByte(byte(ins.Op)); err != nil {
		return err
	}
	if err := w.w.WriteByte(ins.Dst); err != nil {
		return err
	}
	if ins.NSrc > isa.MaxSrcRegs {
		return fmt.Errorf("trace: instruction with %d sources", ins.NSrc)
	}
	if err := w.w.WriteByte(ins.NSrc); err != nil {
		return err
	}
	for _, r := range ins.Sources() {
		if err := w.w.WriteByte(r); err != nil {
			return err
		}
	}
	switch {
	case ins.Op.IsMemRead() || ins.Op.IsMemWrite():
		if err := w.uvarint(zigzag(int64(ins.Addr) - int64(w.lastAddr))); err != nil {
			return err
		}
		w.lastAddr = ins.Addr
	case ins.Op.IsControl():
		taken := byte(0)
		if ins.Taken {
			taken = 1
		}
		if err := w.w.WriteByte(taken); err != nil {
			return err
		}
		if err := w.uvarint(ins.Target); err != nil {
			return err
		}
	}
	w.count++
	return nil
}

// Count returns how many instructions have been written.
func (w *Writer) Count() uint64 { return w.count }

// Flush writes any buffered bytes to the underlying writer.
func (w *Writer) Flush() error {
	if !w.started {
		// An empty trace still carries the header.
		if _, err := w.w.Write(traceMagic[:]); err != nil {
			return err
		}
		w.started = true
	}
	return w.w.Flush()
}

// Reader decodes a trace stream produced by Writer.
type Reader struct {
	r        *bufio.Reader
	lastPC   uint64
	lastAddr uint64
	started  bool
}

// NewReader wraps r for decoding.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next decodes the next instruction into ins. It returns io.EOF at the
// clean end of the stream and ErrBadTrace on corruption.
func (r *Reader) Next(ins *isa.Instruction) error {
	if !r.started {
		var magic [4]byte
		if _, err := io.ReadFull(r.r, magic[:]); err != nil {
			if err == io.EOF {
				return fmt.Errorf("%w: missing header", ErrBadTrace)
			}
			return err
		}
		if magic != traceMagic {
			return fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
		}
		r.started = true
	}

	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF // clean end between instructions
		}
		return fmt.Errorf("%w: truncated pc", ErrBadTrace)
	}
	*ins = isa.Instruction{}
	r.lastPC = uint64(int64(r.lastPC) + unzig(delta))
	ins.PC = r.lastPC

	op, err := r.r.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: truncated op", ErrBadTrace)
	}
	if int(op) >= isa.NumOpClasses {
		return fmt.Errorf("%w: op class %d", ErrBadTrace, op)
	}
	ins.Op = isa.OpClass(op)

	if ins.Dst, err = r.r.ReadByte(); err != nil {
		return fmt.Errorf("%w: truncated dst", ErrBadTrace)
	}
	nsrc, err := r.r.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: truncated nsrc", ErrBadTrace)
	}
	if nsrc > isa.MaxSrcRegs {
		return fmt.Errorf("%w: %d sources", ErrBadTrace, nsrc)
	}
	ins.NSrc = nsrc
	for i := 0; i < int(nsrc); i++ {
		if ins.Src[i], err = r.r.ReadByte(); err != nil {
			return fmt.Errorf("%w: truncated src", ErrBadTrace)
		}
	}

	switch {
	case ins.Op.IsMemRead() || ins.Op.IsMemWrite():
		d, err := binary.ReadUvarint(r.r)
		if err != nil {
			return fmt.Errorf("%w: truncated addr", ErrBadTrace)
		}
		r.lastAddr = uint64(int64(r.lastAddr) + unzig(d))
		ins.Addr = r.lastAddr
	case ins.Op.IsControl():
		taken, err := r.r.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: truncated taken flag", ErrBadTrace)
		}
		ins.Taken = taken != 0
		if ins.Target, err = binary.ReadUvarint(r.r); err != nil {
			return fmt.Errorf("%w: truncated target", ErrBadTrace)
		}
	}
	return nil
}
