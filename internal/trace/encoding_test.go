package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func roundTrip(t *testing.T, instrs []isa.Instruction) []isa.Instruction {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var out []isa.Instruction
	var ins isa.Instruction
	for {
		err := r.Next(&ins)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ins)
	}
	return out
}

func TestTraceRoundTripGenerated(t *testing.T) {
	b := validBehavior()
	var orig []isa.Instruction
	if err := GenerateInterval(&b, 5, 20000, func(ins *isa.Instruction) {
		orig = append(orig, *ins)
	}); err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, orig)
	if len(got) != len(orig) {
		t.Fatalf("round-tripped %d of %d instructions", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("instruction %d changed:\n%v\n%v", i, &orig[i], &got[i])
		}
	}
}

func TestTraceEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var ins isa.Instruction
	if err := r.Next(&ins); err != io.EOF {
		t.Fatalf("empty trace Next = %v, want EOF", err)
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("not a trace at all")))
	var ins isa.Instruction
	if err := r.Next(&ins); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("garbage accepted: %v", err)
	}
}

func TestTraceRejectsTruncation(t *testing.T) {
	b := validBehavior()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := GenerateInterval(&b, 7, 100, func(ins *isa.Instruction) {
		if err := w.Write(ins); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut mid-instruction: at least one prefix in the body must error
	// with ErrBadTrace rather than silently truncate everything.
	sawBad := false
	for cut := 5; cut < len(full); cut += 7 {
		r := NewReader(bytes.NewReader(full[:cut]))
		var ins isa.Instruction
		var err error
		for {
			err = r.Next(&ins)
			if err != nil {
				break
			}
		}
		if errors.Is(err, ErrBadTrace) {
			sawBad = true
		} else if err != io.EOF {
			t.Fatalf("unexpected error %v at cut %d", err, cut)
		}
	}
	if !sawBad {
		t.Fatal("no truncation was ever detected")
	}
}

func TestTraceCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ins := isa.Instruction{Op: isa.OpIntAdd, PC: 0x400000}
	for i := 0; i < 42; i++ {
		if err := w.Write(&ins); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 42 {
		t.Fatalf("Count = %d", w.Count())
	}
}

func TestTraceCompactness(t *testing.T) {
	// Delta encoding should keep loop-heavy traces well under the naive
	// fixed-width footprint (~26 bytes/instruction).
	b := validBehavior()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 50000
	if err := GenerateInterval(&b, 11, n, func(ins *isa.Instruction) {
		if err := w.Write(ins); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	perInstr := float64(buf.Len()) / n
	if perInstr > 12 {
		t.Fatalf("trace uses %.1f bytes/instruction, expected compact encoding", perInstr)
	}
}

func TestTraceZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzig(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRejectsOversizedNSrc(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	bad := isa.Instruction{Op: isa.OpIntAdd, NSrc: isa.MaxSrcRegs + 1}
	if err := w.Write(&bad); err == nil {
		t.Fatal("oversized NSrc accepted")
	}
}
