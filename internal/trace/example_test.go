package trace_test

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Example generates a tiny synthetic instruction stream from a behaviour
// specification and counts its memory operations.
func Example() {
	behavior := trace.PhaseBehavior{
		Name:     "example/kernel",
		Mix:      trace.BaseMix(),
		CodeSize: 2000,
		Branch:   trace.BranchSpec{TakenBias: 0.7, PatternPeriod: 8, NoiseLevel: 0.05},
		Reg:      trace.RegDepSpec{MeanDepDist: 5, AvgSrcRegs: 1.5, WriteFraction: 0.75},
		Loads:    []trace.AccessPattern{{Kind: trace.PatternStride, Weight: 1, Region: 1 << 20, Stride: 8}},
		Stores:   []trace.AccessPattern{{Kind: trace.PatternRandom, Weight: 1, Region: 1 << 18}},
		Jitter:   0.05,
	}

	loads, stores := 0, 0
	err := trace.GenerateInterval(&behavior, 42, 10000, func(ins *isa.Instruction) {
		switch {
		case ins.Op.IsMemRead():
			loads++
		case ins.Op.IsMemWrite():
			stores++
		}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The stream is deterministic for a fixed (behaviour, seed) pair.
	fmt.Println(loads > stores, loads+stores > 1000)
	// Output: true true
}
