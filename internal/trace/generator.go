package trace

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Memory-layout constants of the synthetic address space.
const (
	// CodeBase is the base address of the instruction stream.
	CodeBase = 0x0040_0000
	// DataBase is the base address of the first data region; successive
	// access patterns occupy disjoint 256 MiB-spaced regions.
	DataBase = 0x1000_0000
	// regionSpacing separates the pattern regions.
	regionSpacing = 1 << 28

	// depRingSize is how far back the generator can create register
	// dependences; distances beyond it fall back to long-range values.
	depRingSize = 256
)

// Generator emits the deterministic instruction stream of one interval of
// one phase. Create one with NewGenerator and drain it with Next; a fixed
// (behaviour, seed) pair always yields the identical stream.
type Generator struct {
	b          PhaseBehavior
	rng        *RNG
	staticSeed uint64

	mixCum      [isa.NumOpClasses]float64 // cumulative normalized mix
	staticPhase float64                   // offset of the op-class layout sequence

	// Program-counter walk.
	pcIdx    int
	codeSize int
	numFuncs int
	stack    []int

	// Register dependence ring: destination register written d
	// instructions ago (0 = wrote nothing).
	ring    [depRingSize]uint8
	ringPos int

	// Hoisted register-spec quantities (constant per generator).
	srcBase int     // integer part of AvgSrcRegs
	srcFrac float64 // fractional part of AvgSrcRegs

	// Memoized op classes: opClassAt is a pure function of the PC index,
	// and hot loops revisit the same few PCs, so a one-byte-per-static-
	// instruction cache removes the float low-discrepancy computation from
	// the steady state. 255 marks an unfilled slot (real classes are
	// < isa.NumOpClasses).
	opCache []uint8

	// Per-static-branch pattern state.
	branches map[int]*branchState

	// Data address streams.
	loadPats  []patternState
	storePats []patternState
	loadCum   []float64
	storeCum  []float64

	emitted uint64
}

type branchState struct {
	period int // pattern period
	takens int // taken outcomes per period
	pos    int // position within period
}

type patternState struct {
	AccessPattern
	base  uint64
	slots uint64 // number of 8-byte slots (power of two for chase)
	cur   uint64
	// chase walk: full-period LCG over slots.
	lcgA, lcgC uint64
}

// NewGenerator builds a generator for one interval. The behaviour is
// validated; per-interval jitter is applied using bits of seed so that two
// intervals of the same phase are similar but not identical.
func NewGenerator(b *PhaseBehavior, seed uint64) (*Generator, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	rng := NewRNG(seed)
	jb := b.jittered(rng)

	g := &Generator{
		b:   jb,
		rng: rng,
		// The static code layout (which PC holds which operation, where
		// calls go, per-branch pattern periods) is a pure function of
		// the behaviour's parameters — NOT of the phase name — so that
		// parameter-identical phases in different benchmarks share their
		// synthetic static code exactly, the way two programs running
		// the same kernel share its loop structure. Jitter varies per
		// interval but never the layout seed.
		staticSeed: b.paramHash(),
		codeSize:   jb.CodeSize,
		branches:   make(map[int]*branchState),
	}
	g.staticPhase = float64(g.staticSeed>>11) / (1 << 53)
	mix, err := jb.Mix.Normalize()
	if err != nil {
		return nil, err
	}
	var cum float64
	for i, w := range mix {
		cum += w
		g.mixCum[i] = cum
	}
	g.numFuncs = g.codeSize / 512
	if g.numFuncs < 1 {
		g.numFuncs = 1
	}
	g.srcBase = int(jb.Reg.AvgSrcRegs)
	g.srcFrac = jb.Reg.AvgSrcRegs - float64(g.srcBase)
	g.opCache = make([]uint8, g.codeSize)
	for i := range g.opCache {
		g.opCache[i] = 255
	}
	g.loadPats, g.loadCum = makePatternStates(jb.Loads, 0)
	g.storePats, g.storeCum = makePatternStates(jb.Stores, len(jb.Loads))
	return g, nil
}

func makePatternStates(ps []AccessPattern, regionOffset int) ([]patternState, []float64) {
	states := make([]patternState, len(ps))
	cum := make([]float64, len(ps))
	var total float64
	for _, p := range ps {
		total += p.Weight
	}
	if total <= 0 {
		total = 1
	}
	var acc float64
	for i, p := range ps {
		acc += p.Weight / total
		cum[i] = acc
		st := patternState{
			AccessPattern: p,
			base:          DataBase + uint64(regionOffset+i)*regionSpacing,
		}
		// Slot count: power of two covering the region, for the
		// chase/random walks.
		slots := uint64(1)
		for slots*8 < p.Region {
			slots <<= 1
		}
		st.slots = slots
		// Full-period LCG over power-of-two modulus: c odd, a = 4k+1.
		st.lcgA = 4*((Hash64(st.base)%slots)/4) + 1
		st.lcgC = Hash64(st.base^0xabcd)%slots | 1
		states[i] = st
	}
	return states, cum
}

// staticBits returns deterministic per-static-instruction random bits: the
// same PC index always maps to the same value within a phase, across
// intervals, which keeps the synthetic "static code" self-consistent.
func (g *Generator) staticBits(pcIdx int, salt uint64) uint64 {
	return Hash64(uint64(pcIdx)*0x9e3779b97f4a7c15 ^ g.staticSeed ^ salt)
}

func pickCum(cum []float64, x float64) int {
	for i, c := range cum {
		if x < c {
			return i
		}
	}
	return len(cum) - 1
}

// opClassAt returns the operation class of the static instruction at
// pcIdx. Classes are laid out along a golden-ratio low-discrepancy
// sequence rather than independent per-PC draws: any run of L consecutive
// static instructions then carries the specified mix with O(1/L)
// discrepancy, so even small hot loops execute the phase's intended
// instruction mix instead of a lumpy sample of it.
func (g *Generator) opClassAt(pcIdx int) isa.OpClass {
	if c := g.opCache[pcIdx]; c != 255 {
		return isa.OpClass(c)
	}
	c := g.opClassSlow(pcIdx)
	g.opCache[pcIdx] = uint8(c)
	return c
}

func (g *Generator) opClassSlow(pcIdx int) isa.OpClass {
	const phi = 0.61803398874989484820
	x := float64(pcIdx)*phi + g.staticPhase
	x -= math.Floor(x)
	for i, c := range g.mixCum {
		if x < c {
			return isa.OpClass(i)
		}
	}
	return isa.OpOther
}

// Next fills ins with the next instruction of the stream. It always
// succeeds; the stream is unbounded.
func (g *Generator) Next(ins *isa.Instruction) {
	pcIdx := g.pcIdx
	op := g.opClassAt(pcIdx)

	*ins = isa.Instruction{
		PC: CodeBase + uint64(pcIdx)*isa.InstrBytes,
		Op: op,
	}

	g.fillRegs(ins)

	switch {
	case op == isa.OpLoad:
		ins.Addr = g.nextAddr(g.loadPats, g.loadCum, pcIdx)
	case op == isa.OpStore:
		ins.Addr = g.nextAddr(g.storePats, g.storeCum, pcIdx)
	case op.IsControl():
		g.fillControl(ins, pcIdx)
	}
	if !op.IsControl() {
		g.advancePC(pcIdx + 1)
	}

	// Record the register write for future dependences (depRingSize is a
	// power of two, so the mask is the modulus).
	g.ringPos = (g.ringPos + 1) & (depRingSize - 1)
	g.ring[g.ringPos] = ins.Dst
	g.emitted++
}

// fillRegs assigns destination and source registers, honouring the phase's
// dependence-distance and register-traffic specification.
func (g *Generator) fillRegs(ins *isa.Instruction) {
	op := ins.Op
	spec := g.b.Reg

	// Destination: stores, control transfers and nops produce no value.
	producer := !(op == isa.OpStore || op.IsControl() || op == isa.OpNop)
	if producer && g.rng.Bernoulli(spec.WriteFraction) {
		ins.Dst = uint8(1 + g.rng.Intn(isa.NumRegs-1))
	}

	// Source count around the target average.
	if op == isa.OpNop {
		return
	}
	n := g.srcBase
	if g.rng.Bernoulli(g.srcFrac) {
		n++
	}
	if n > isa.MaxSrcRegs {
		n = isa.MaxSrcRegs
	}
	ins.NSrc = uint8(n)
	for i := 0; i < n; i++ {
		ins.Src[i] = g.sourceAtDistance(g.sampleDepDist())
	}
}

// sampleDepDist draws a register dependency distance. Short-dependence
// phases (serial codes) use a geometric distribution; long-dependence
// phases (software-pipelined FP loops) use a centered uniform distribution
// with a small local-reuse tail, so their dataflow actually exposes ILP
// instead of being throttled by the geometric distribution's mode at 1.
func (g *Generator) sampleDepDist() int {
	m := g.b.Reg.MeanDepDist
	if m <= 4 {
		return g.rng.Geometric(m)
	}
	if g.rng.Bernoulli(0.12) {
		return g.rng.Geometric(3)
	}
	lo := int(m / 2)
	if lo < 1 {
		lo = 1
	}
	width := int(m)
	if width < 1 {
		width = 1
	}
	return lo + g.rng.Intn(width)
}

// sourceAtDistance returns the register written approximately d
// instructions ago, searching a little further back if that slot wrote
// nothing, and falling back to a random register.
func (g *Generator) sourceAtDistance(d int) uint8 {
	// The ring size is a power of two, so masking the (possibly negative)
	// index is exactly the old non-negative modulus; each probe steps one
	// slot further back.
	limit := 16
	if rest := depRingSize - d; rest < limit {
		limit = rest
	}
	idx := g.ringPos - d
	for probe := 0; probe < limit; probe++ {
		if r := g.ring[(idx-probe)&(depRingSize-1)]; r != 0 {
			return r
		}
	}
	return uint8(1 + g.rng.Intn(isa.NumRegs-1))
}

// nextAddr serves one memory access: the pattern is chosen statically per
// PC (so local-stride behaviour is stable), and the pattern state advances.
func (g *Generator) nextAddr(pats []patternState, cum []float64, pcIdx int) uint64 {
	x := float64(g.staticBits(pcIdx, 0x22)>>11) / (1 << 53)
	p := &pats[pickCum(cum, x)]
	var off uint64
	switch p.Kind {
	case PatternStride:
		off = p.cur
		p.cur += p.Stride
		if p.cur >= p.Region {
			p.cur %= 8 // wrap, keeping alignment phase
		}
	case PatternRandom:
		off = (g.rng.Uint64n(p.slots)) * 8
		if off >= p.Region {
			off %= p.Region &^ 7
		}
	case PatternChase:
		p.cur = (p.cur*p.lcgA + p.lcgC) % p.slots
		off = p.cur * 8
		if off >= p.Region {
			off %= p.Region &^ 7
		}
	}
	return p.base + off
}

// fillControl resolves a control transfer: outcome, target, and the PC walk.
func (g *Generator) fillControl(ins *isa.Instruction, pcIdx int) {
	switch ins.Op {
	case isa.OpBranchCond:
		taken := g.branchOutcome(pcIdx)
		ins.Taken = taken
		if taken {
			target := g.branchTarget(pcIdx)
			ins.Target = CodeBase + uint64(target)*isa.InstrBytes
			g.advancePC(target)
		} else {
			ins.Target = CodeBase + uint64(pcIdx+1)*isa.InstrBytes
			g.advancePC(pcIdx + 1)
		}
	case isa.OpBranchJump:
		// Jumps are modelled as indirect dispatch (switch tables,
		// virtual calls): the target varies per execution. A static
		// target would let a cycle of jump instructions trap the PC
		// forever, since nothing conditional ever breaks the loop.
		target := g.rng.Intn(g.codeSize)
		ins.Taken = true
		ins.Target = CodeBase + uint64(target)*isa.InstrBytes
		g.advancePC(target)
	case isa.OpCall:
		// Call sites mostly target a fixed callee, but one call in ten
		// dispatches dynamically (function pointers, virtual calls).
		// The dynamic share also guarantees escape from degenerate
		// static cycles (a callee that immediately re-executes its own
		// call site would otherwise trap the PC).
		f := int(g.staticBits(pcIdx, 0x44)) % g.numFuncs
		if f < 0 {
			f = -f
		}
		if g.rng.Bernoulli(0.1) {
			f = g.rng.Intn(g.numFuncs)
		}
		target := f * (g.codeSize / g.numFuncs)
		if len(g.stack) < 64 {
			g.stack = append(g.stack, pcIdx+1)
		}
		ins.Taken = true
		ins.Target = CodeBase + uint64(target)*isa.InstrBytes
		g.advancePC(target)
	case isa.OpReturn:
		target := 0
		if n := len(g.stack); n > 0 {
			target = g.stack[n-1]
			g.stack = g.stack[:n-1]
		} else {
			target = g.rng.Intn(g.codeSize)
		}
		ins.Taken = true
		ins.Target = CodeBase + uint64(target)*isa.InstrBytes
		g.advancePC(target)
	}
}

// branchOutcome produces the outcome stream of the static conditional
// branch at pcIdx: a per-branch periodic pattern (loop-like runs of taken
// outcomes) perturbed by noise, or a Bernoulli stream when patterns are
// disabled.
func (g *Generator) branchOutcome(pcIdx int) bool {
	spec := g.b.Branch
	if spec.PatternPeriod == 0 {
		return g.rng.Bernoulli(spec.TakenBias)
	}
	st := g.branches[pcIdx]
	if st == nil {
		// Period is a static property of the branch: 2 .. 2*mean.
		h := g.staticBits(pcIdx, 0x55)
		period := 2 + int(h%uint64(2*spec.PatternPeriod-2+1))
		takens := int(spec.TakenBias*float64(period) + 0.5)
		if takens < 0 {
			takens = 0
		}
		if takens > period {
			takens = period
		}
		st = &branchState{period: period, takens: takens}
		g.branches[pcIdx] = st
	}
	taken := st.pos < st.takens
	st.pos++
	if st.pos >= st.period {
		st.pos = 0
	}
	if spec.NoiseLevel > 0 && g.rng.Bernoulli(spec.NoiseLevel) {
		taken = !taken
	}
	return taken
}

// branchTarget picks where a taken conditional branch goes: mostly a short
// backward jump (a loop), occasionally a short forward skip.
func (g *Generator) branchTarget(pcIdx int) int {
	delta := g.rng.Geometric(12) + 1
	var target int
	if g.rng.Bernoulli(0.8) {
		target = pcIdx - delta
	} else {
		target = pcIdx + delta
	}
	if target < 0 {
		target = 0
	}
	return target
}

func (g *Generator) advancePC(next int) {
	if next >= g.codeSize || next < 0 {
		next = 0
	}
	g.pcIdx = next
}

// Emitted reports how many instructions the generator has produced.
func (g *Generator) Emitted() uint64 { return g.emitted }

// NextBatch fills batch with the next len(batch) instructions of the
// stream. It is the block-granularity form of Next: the stream contents are
// identical for any batching of the same generator.
func (g *Generator) NextBatch(batch []isa.Instruction) {
	for i := range batch {
		g.Next(&batch[i])
	}
}

// DefaultBatchSize is the block size the batched generate→measure kernel
// uses by default: large enough to amortize per-block overhead to nothing,
// small enough that a block of instructions stays resident in L2 while the
// analyzer's per-subsystem passes sweep it.
const DefaultBatchSize = 4096

// GenerateIntervalBatches runs a fresh generator for b with the given seed
// over length instructions, filling buf repeatedly and invoking consume for
// each filled block (the final block may be shorter). buf is reused between
// calls — consume must not retain it. A nil or empty buf allocates a
// DefaultBatchSize buffer. The same (b, seed, length) always produce the
// identical stream, for any buffer size.
func GenerateIntervalBatches(b *PhaseBehavior, seed uint64, length int, buf []isa.Instruction, consume func(batch []isa.Instruction)) error {
	if length <= 0 {
		return fmt.Errorf("trace: non-positive interval length %d", length)
	}
	g, err := NewGenerator(b, seed)
	if err != nil {
		return err
	}
	if len(buf) == 0 {
		buf = make([]isa.Instruction, DefaultBatchSize)
	}
	for length > 0 {
		n := len(buf)
		if n > length {
			n = length
		}
		g.NextBatch(buf[:n])
		consume(buf[:n])
		length -= n
	}
	return nil
}

// GenerateInterval runs a fresh generator for b with the given seed over
// length instructions, invoking visit for each. The same arguments always
// produce the identical stream. It is the per-instruction convenience form
// of GenerateIntervalBatches; hot paths should use the block API with
// mica.Analyzer.RecordBatch instead.
func GenerateInterval(b *PhaseBehavior, seed uint64, length int, visit func(*isa.Instruction)) error {
	if length <= 0 {
		return fmt.Errorf("trace: non-positive interval length %d", length)
	}
	g, err := NewGenerator(b, seed)
	if err != nil {
		return err
	}
	var ins isa.Instruction
	for i := 0; i < length; i++ {
		g.Next(&ins)
		visit(&ins)
	}
	return nil
}
