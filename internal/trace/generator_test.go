package trace

import (
	"math"
	"testing"

	"repro/internal/isa"
)

func collect(t *testing.T, b *PhaseBehavior, seed uint64, n int) []isa.Instruction {
	t.Helper()
	out := make([]isa.Instruction, 0, n)
	if err := GenerateInterval(b, seed, n, func(ins *isa.Instruction) {
		out = append(out, *ins)
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGenerateIntervalLength(t *testing.T) {
	b := validBehavior()
	got := collect(t, &b, 1, 1234)
	if len(got) != 1234 {
		t.Fatalf("generated %d instructions, want 1234", len(got))
	}
}

func TestGenerateIntervalRejectsBadLength(t *testing.T) {
	b := validBehavior()
	if err := GenerateInterval(&b, 1, 0, func(*isa.Instruction) {}); err == nil {
		t.Fatal("zero-length interval accepted")
	}
	if err := GenerateInterval(&b, 1, -5, func(*isa.Instruction) {}); err == nil {
		t.Fatal("negative-length interval accepted")
	}
}

func TestGenerateIntervalRejectsInvalidBehavior(t *testing.T) {
	b := validBehavior()
	b.CodeSize = 0
	if err := GenerateInterval(&b, 1, 10, func(*isa.Instruction) {}); err == nil {
		t.Fatal("invalid behaviour accepted")
	}
}

func TestDeterminism(t *testing.T) {
	b := validBehavior()
	a := collect(t, &b, 77, 5000)
	c := collect(t, &b, 77, 5000)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("instruction %d differs between identical runs:\n%v\n%v", i, &a[i], &c[i])
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	b := validBehavior()
	a := collect(t, &b, 1, 2000)
	c := collect(t, &b, 2, 2000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Fatalf("different seeds produced %d/%d identical instructions", same, len(a))
	}
}

func TestMixConvergence(t *testing.T) {
	b := validBehavior()
	b.Jitter = 0 // measure the spec itself
	mix, err := b.Mix.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var counts [isa.NumOpClasses]int
	for _, ins := range collect(t, &b, 3, n) {
		counts[ins.Op]++
	}
	for c := 0; c < isa.NumOpClasses; c++ {
		got := float64(counts[c]) / n
		want := mix[c]
		// The low-discrepancy static layout keeps loop bodies close to
		// the specified mix; PC revisit weighting adds modest skew.
		if math.Abs(got-want) > 0.05+0.3*want {
			t.Errorf("class %v: got %.4f, spec %.4f", isa.OpClass(c), got, want)
		}
	}
}

func TestBranchTakenRate(t *testing.T) {
	b := validBehavior()
	b.Jitter = 0
	b.Branch = BranchSpec{TakenBias: 0.8, PatternPeriod: 10, NoiseLevel: 0}
	// The dynamic (execution-weighted) rate over-counts branches inside
	// hot loops, so validate the mechanism on the per-static-branch mean
	// instead.
	takenBy := map[uint64]int{}
	totalBy := map[uint64]int{}
	for _, ins := range collect(t, &b, 5, 200000) {
		if ins.Op.IsConditional() {
			totalBy[ins.PC]++
			if ins.Taken {
				takenBy[ins.PC]++
			}
		}
	}
	var sum float64
	var n int
	for pc, tot := range totalBy {
		if tot < 20 {
			continue
		}
		sum += float64(takenBy[pc]) / float64(tot)
		n++
	}
	if n == 0 {
		t.Fatal("no branch executed often enough")
	}
	if rate := sum / float64(n); math.Abs(rate-0.8) > 0.08 {
		t.Fatalf("mean per-branch taken rate = %.3f over %d branches, want ~0.8", rate, n)
	}
}

func TestBernoulliBranchesUnbiased(t *testing.T) {
	b := validBehavior()
	b.Jitter = 0
	b.Branch = BranchSpec{TakenBias: 0.5, PatternPeriod: 0}
	taken, total := 0, 0
	for _, ins := range collect(t, &b, 5, 100000) {
		if ins.Op.IsConditional() {
			total++
			if ins.Taken {
				taken++
			}
		}
	}
	rate := float64(taken) / float64(total)
	if math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("Bernoulli taken rate = %.3f", rate)
	}
}

func TestMemoryAddressesWithinRegions(t *testing.T) {
	b := validBehavior()
	b.Jitter = 0.2 // jitter may enlarge regions a bit; bound generously
	for _, ins := range collect(t, &b, 9, 50000) {
		switch {
		case ins.Op.IsMemRead(), ins.Op.IsMemWrite():
			if ins.Addr < DataBase {
				t.Fatalf("data address %#x below data base", ins.Addr)
			}
		}
	}
}

func TestPCStaysInCode(t *testing.T) {
	b := validBehavior()
	limit := CodeBase + uint64(b.CodeSize)*isa.InstrBytes
	for _, ins := range collect(t, &b, 11, 50000) {
		if ins.PC < CodeBase || ins.PC >= limit {
			t.Fatalf("PC %#x outside code [%#x,%#x)", ins.PC, CodeBase, limit)
		}
	}
}

func TestStaticInstructionsConsistent(t *testing.T) {
	// The same PC must always decode to the same operation class within
	// one phase — the synthetic "static code" property.
	b := validBehavior()
	ops := map[uint64]isa.OpClass{}
	for _, ins := range collect(t, &b, 13, 50000) {
		if prev, ok := ops[ins.PC]; ok && prev != ins.Op {
			t.Fatalf("PC %#x decoded as both %v and %v", ins.PC, prev, ins.Op)
		}
		ops[ins.PC] = ins.Op
	}
	if len(ops) < 10 {
		t.Fatalf("only %d static instructions visited", len(ops))
	}
}

func TestControlInstructionsHaveTargets(t *testing.T) {
	b := validBehavior()
	for _, ins := range collect(t, &b, 15, 20000) {
		if ins.Op.IsControl() && ins.Taken && ins.Target == 0 {
			t.Fatalf("taken control transfer without target: %v", &ins)
		}
	}
}

func TestSourcesAreNonZeroRegs(t *testing.T) {
	b := validBehavior()
	for _, ins := range collect(t, &b, 17, 20000) {
		for _, r := range ins.Sources() {
			if r == isa.ZeroReg || r >= isa.NumRegs {
				t.Fatalf("source register %d out of range", r)
			}
		}
		if ins.Dst >= isa.NumRegs {
			t.Fatalf("destination register %d out of range", ins.Dst)
		}
	}
}

func TestStoreAndControlNeverWriteRegs(t *testing.T) {
	b := validBehavior()
	for _, ins := range collect(t, &b, 19, 20000) {
		if (ins.Op == isa.OpStore || ins.Op.IsControl() || ins.Op == isa.OpNop) && ins.WritesReg() {
			t.Fatalf("%v writes register r%d", ins.Op, ins.Dst)
		}
	}
}

func TestStridePatternLocality(t *testing.T) {
	// A pure unit-stride phase must produce overwhelmingly small global
	// load strides.
	b := validBehavior()
	b.Jitter = 0
	b.Loads = []AccessPattern{{Kind: PatternStride, Weight: 1, Region: 1 << 20, Stride: 8}}
	var lastAddr uint64
	have := false
	small, total := 0, 0
	for _, ins := range collect(t, &b, 21, 100000) {
		if !ins.Op.IsMemRead() {
			continue
		}
		if have {
			d := int64(ins.Addr) - int64(lastAddr)
			if d < 0 {
				d = -d
			}
			total++
			if d <= 64 {
				small++
			}
		}
		lastAddr, have = ins.Addr, true
	}
	if total == 0 {
		t.Fatal("no loads")
	}
	if frac := float64(small) / float64(total); frac < 0.95 {
		t.Fatalf("unit-stride phase has only %.2f small global strides", frac)
	}
}

func TestChasePatternCoversRegion(t *testing.T) {
	b := validBehavior()
	b.Jitter = 0
	region := uint64(1 << 14) // 16 KiB = 2048 slots
	b.Loads = []AccessPattern{{Kind: PatternChase, Weight: 1, Region: region}}
	seen := map[uint64]bool{}
	for _, ins := range collect(t, &b, 23, 60000) {
		if ins.Op.IsMemRead() {
			seen[ins.Addr] = true
		}
	}
	// The full-period LCG walk should touch a large share of the slots.
	if len(seen) < 1000 {
		t.Fatalf("chase walk touched only %d distinct addresses", len(seen))
	}
}

func TestMeanDepDistRoughlyHonored(t *testing.T) {
	for _, mean := range []float64{2, 24} {
		b := validBehavior()
		b.Jitter = 0
		b.Reg.MeanDepDist = mean
		b.Reg.WriteFraction = 1 // every producer writes: distances are exact
		lastWrite := map[uint8]int{}
		var sum float64
		var count int
		instrs := collect(t, &b, 29, 100000)
		for i, ins := range instrs {
			for _, r := range ins.Sources() {
				if w, ok := lastWrite[r]; ok {
					sum += float64(i - w)
					count++
				}
			}
			if ins.WritesReg() {
				lastWrite[ins.Dst] = i
			}
		}
		got := sum / float64(count)
		// The generator remaps distances through the ring of actual
		// writers, so allow a wide band; what matters is ordering.
		if mean == 2 && got > 8 {
			t.Fatalf("short-dep phase measured mean %v", got)
		}
		if mean == 24 && got < 10 {
			t.Fatalf("long-dep phase measured mean %v", got)
		}
	}
}

func TestEmittedCount(t *testing.T) {
	b := validBehavior()
	g, err := NewGenerator(&b, 5)
	if err != nil {
		t.Fatal(err)
	}
	var ins isa.Instruction
	for i := 0; i < 123; i++ {
		g.Next(&ins)
	}
	if g.Emitted() != 123 {
		t.Fatalf("Emitted() = %d, want 123", g.Emitted())
	}
}

func TestBranchPatternPredictability(t *testing.T) {
	// A noiseless periodic branch pattern must produce per-branch outcome
	// streams that repeat with the assigned period.
	b := validBehavior()
	b.Jitter = 0
	b.Branch = BranchSpec{TakenBias: 0.75, PatternPeriod: 8, NoiseLevel: 0}
	outcomes := map[uint64][]bool{}
	for _, ins := range collect(t, &b, 31, 200000) {
		if ins.Op.IsConditional() {
			outcomes[ins.PC] = append(outcomes[ins.PC], ins.Taken)
		}
	}
	checked := 0
	for pc, seq := range outcomes {
		if len(seq) < 40 {
			continue
		}
		// Find the period: smallest p in [2,16] with seq[i] == seq[i-p].
		found := false
		for p := 2; p <= 16 && !found; p++ {
			ok := true
			for i := p; i < len(seq); i++ {
				if seq[i] != seq[i-p] {
					ok = false
					break
				}
			}
			found = ok
		}
		if !found {
			t.Fatalf("branch %#x outcome stream is not periodic (len %d)", pc, len(seq))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no branch executed often enough to verify periodicity")
	}
}
