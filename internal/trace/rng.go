package trace

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro-style over a splitmix64-expanded seed). Every synthetic interval
// is generated from its own RNG seeded by (benchmark, interval), which makes
// interval contents reproducible without storing traces.
type RNG struct {
	s0, s1 uint64
}

// splitmix64 is the seed expander recommended for xorshift-family
// generators; it also serves as the general-purpose hash used for
// deterministic per-entity parameters (per-branch patterns, seeds).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash64 mixes an arbitrary 64-bit value into a well-distributed hash.
func Hash64(x uint64) uint64 { return splitmix64(x) }

// HashString hashes a string deterministically (FNV-1a folded through
// splitmix64), for stable per-benchmark seeds.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return splitmix64(h)
}

// NewRNG returns a generator seeded from seed. Two distinct seeds yield
// independent-looking streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	r.s0 = splitmix64(seed)
	r.s1 = splitmix64(r.s0)
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 pseudo-random bits (xoroshiro128+).
func (r *RNG) Uint64() uint64 {
	s0, s1 := r.s0, r.s1
	result := s0 + s1
	s1 ^= s0
	r.s0 = ((s0 << 55) | (s0 >> 9)) ^ s1 ^ (s1 << 14)
	r.s1 = (s1 << 36) | (s1 >> 28)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("trace: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with the given
// mean (support {1, 2, 3, ...}). A mean <= 1 always returns 1.
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	// P(X = k) = p(1-p)^(k-1), mean = 1/p.
	p := 1 / mean
	// Inverse-CDF sampling; cap to keep pathological tails bounded.
	u := r.Float64()
	if u <= 0 {
		u = 1e-18
	}
	// k = ceil(ln(1-u)/ln(1-p))
	k := 1
	q := 1 - p
	acc := p
	cum := p
	for cum < u && k < 1<<20 {
		acc *= q
		cum += acc
		k++
	}
	return k
}

// Jitter returns v scaled by a uniform factor in [1-amount, 1+amount],
// clamped to be non-negative.
func (r *RNG) Jitter(v, amount float64) float64 {
	if amount <= 0 {
		return v
	}
	f := 1 + amount*(2*r.Float64()-1)
	if f < 0 {
		f = 0
	}
	return v * f
}

// Pick returns an index sampled according to the non-negative weights. The
// weights need not be normalized; if they sum to zero, Pick returns 0.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
