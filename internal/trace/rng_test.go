package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	var zeroes int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeroes++
		}
	}
	if zeroes > 2 {
		t.Fatalf("zero-seeded RNG looks stuck: %d zero draws", zeroes)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %.4f, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %.4f", rate)
	}
}

func TestGeometricMean(t *testing.T) {
	for _, mean := range []float64{1, 2, 5, 20} {
		r := NewRNG(13)
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			v := r.Geometric(mean)
			if v < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", mean, v)
			}
			sum += float64(v)
		}
		got := sum / n
		if math.Abs(got-mean) > 0.1*mean+0.05 {
			t.Fatalf("Geometric(%v) mean = %.3f", mean, got)
		}
	}
}

func TestGeometricSmallMean(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(0.5); v != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(10, 0.2)
		if v < 8-1e-9 || v > 12+1e-9 {
			t.Fatalf("Jitter(10, 0.2) = %v out of [8,12]", v)
		}
	}
	if v := r.Jitter(5, 0); v != 5 {
		t.Fatalf("Jitter with zero amount changed the value: %v", v)
	}
	for i := 0; i < 100; i++ {
		if v := r.Jitter(1, 2); v < 0 {
			t.Fatalf("Jitter produced negative value %v", v)
		}
	}
}

func TestPickWeights(t *testing.T) {
	r := NewRNG(19)
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Pick([]float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight option picked %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.02 {
		t.Fatalf("weight-1-of-4 picked %.3f of the time", frac0)
	}
}

func TestPickDegenerate(t *testing.T) {
	r := NewRNG(23)
	if got := r.Pick([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights picked %d, want 0", got)
	}
	if got := r.Pick([]float64{-1, 2}); got != 1 {
		t.Fatalf("negative weight not skipped: picked %d", got)
	}
}

func TestHashStringStable(t *testing.T) {
	a := HashString("BioPerf/grappa")
	b := HashString("BioPerf/grappa")
	if a != b {
		t.Fatal("HashString not deterministic")
	}
	if HashString("a") == HashString("b") {
		t.Fatal("trivially colliding HashString")
	}
}

func TestHash64Mixes(t *testing.T) {
	f := func(x uint64) bool {
		// Consecutive inputs should not map to consecutive outputs.
		return Hash64(x)^Hash64(x+1) != 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
