package uarch

import "fmt"

// BranchPredictor is a realizable (table-limited) dynamic branch predictor,
// in contrast to the theoretical PPM predictor of the MICA metrics.
type BranchPredictor interface {
	// Record predicts the branch at pc, updates the predictor with the
	// outcome, and returns the prediction made.
	Record(pc uint64, taken bool) bool
	// MissRate returns mispredictions/predictions.
	MissRate() float64
	// Reset clears all state.
	Reset()
	// Name labels the predictor.
	Name() string
}

// counter is a 2-bit saturating counter: 0,1 predict not-taken; 2,3 taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

type predictorStats struct {
	predictions uint64
	misses      uint64
}

func (s *predictorStats) record(pred, taken bool) {
	s.predictions++
	if pred != taken {
		s.misses++
	}
}

func (s *predictorStats) missRate() float64 {
	if s.predictions == 0 {
		return 0
	}
	return float64(s.misses) / float64(s.predictions)
}

// Bimodal is a per-PC 2-bit-counter predictor.
type Bimodal struct {
	table []counter
	mask  uint64
	predictorStats
}

// NewBimodal builds a bimodal predictor with 1<<bits counters.
func NewBimodal(bits int) (*Bimodal, error) {
	if bits < 2 || bits > 24 {
		return nil, fmt.Errorf("uarch: bimodal bits %d out of [2,24]", bits)
	}
	return &Bimodal{table: make([]counter, 1<<bits), mask: 1<<bits - 1}, nil
}

// Name implements BranchPredictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Record implements BranchPredictor.
func (b *Bimodal) Record(pc uint64, taken bool) bool {
	idx := (pc >> 2) & b.mask
	pred := b.table[idx].taken()
	b.table[idx] = b.table[idx].update(taken)
	b.record(pred, taken)
	return pred
}

// MissRate implements BranchPredictor.
func (b *Bimodal) MissRate() float64 { return b.missRate() }

// Reset implements BranchPredictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 0
	}
	b.predictorStats = predictorStats{}
}

// GShare is the classic global-history predictor: the PC is XORed with the
// global history to index a shared 2-bit-counter table.
type GShare struct {
	table    []counter
	mask     uint64
	history  uint64
	histBits uint
	predictorStats
}

// NewGShare builds a gshare predictor with 1<<bits counters and histBits of
// global history.
func NewGShare(bits, histBits int) (*GShare, error) {
	if bits < 2 || bits > 24 {
		return nil, fmt.Errorf("uarch: gshare bits %d out of [2,24]", bits)
	}
	if histBits < 1 || histBits > bits {
		return nil, fmt.Errorf("uarch: gshare history %d out of [1,%d]", histBits, bits)
	}
	return &GShare{table: make([]counter, 1<<bits), mask: 1<<bits - 1, histBits: uint(histBits)}, nil
}

// Name implements BranchPredictor.
func (g *GShare) Name() string { return "gshare" }

// Record implements BranchPredictor.
func (g *GShare) Record(pc uint64, taken bool) bool {
	idx := ((pc >> 2) ^ (g.history & (1<<g.histBits - 1))) & g.mask
	pred := g.table[idx].taken()
	g.table[idx] = g.table[idx].update(taken)
	g.history = g.history<<1 | boolBit(taken)
	g.record(pred, taken)
	return pred
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// MissRate implements BranchPredictor.
func (g *GShare) MissRate() float64 { return g.missRate() }

// Reset implements BranchPredictor.
func (g *GShare) Reset() {
	for i := range g.table {
		g.table[i] = 0
	}
	g.history = 0
	g.predictorStats = predictorStats{}
}
