// Package uarch implements a small microarchitecture-dependent
// characterization stack: set-associative LRU caches, dynamic branch
// predictors and an in-order timing model. The paper's methodology exists
// in opposition to characterizations built on exactly these metrics (IPC,
// cache miss rates, branch misprediction rates — section 6.2): they change
// whenever the hardware configuration changes. This package provides the
// counterpart so the repository can demonstrate that argument
// quantitatively (see the ablation-uarch experiment).
package uarch

import "fmt"

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	name      string
	sets      int
	ways      int
	blockBits uint
	setMask   uint64

	// tags[set*ways + way]; lru[set*ways + way] holds recency stamps.
	tags  []uint64
	valid []bool
	lru   []uint64
	clock uint64

	accesses uint64
	misses   uint64
}

// NewCache builds a cache of the given total size (bytes), associativity
// and block size. Size must be ways*blockSize*2^n for integer n.
func NewCache(name string, size, ways, blockSize int) (*Cache, error) {
	if size <= 0 || ways <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("uarch: non-positive cache geometry")
	}
	if blockSize&(blockSize-1) != 0 {
		return nil, fmt.Errorf("uarch: block size %d not a power of two", blockSize)
	}
	if size%(ways*blockSize) != 0 {
		return nil, fmt.Errorf("uarch: size %d not divisible by ways*block %d", size, ways*blockSize)
	}
	sets := size / (ways * blockSize)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("uarch: set count %d not a power of two", sets)
	}
	blockBits := uint(0)
	for 1<<blockBits < blockSize {
		blockBits++
	}
	c := &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		blockBits: blockBits,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*ways),
		valid:     make([]bool, sets*ways),
		lru:       make([]uint64, sets*ways),
	}
	return c, nil
}

// Access looks up addr, updating LRU state, and reports whether it hit.
// Misses install the block (allocate-on-miss for reads and writes).
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	c.clock++
	block := addr >> c.blockBits
	set := int(block & c.setMask)
	base := set * c.ways

	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == block {
			c.lru[base+w] = c.clock
			return true
		}
	}
	c.misses++
	// Install into a free way if one exists, else the least recently
	// used one.
	victim := base
	if c.valid[base] {
		for w := 1; w < c.ways; w++ {
			if !c.valid[base+w] {
				victim = base + w
				break
			}
			if c.lru[base+w] < c.lru[victim] {
				victim = base + w
			}
		}
	}
	c.tags[victim] = block
	c.valid[victim] = true
	c.lru[victim] = c.clock
	return false
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Accesses returns the number of lookups.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of misses.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses (0 before any access).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
		c.tags[i] = 0
	}
	c.clock = 0
	c.accesses = 0
	c.misses = 0
}
