package uarch

import (
	"fmt"

	"repro/internal/isa"
)

// Config describes one machine configuration for the dependent
// characterization.
type Config struct {
	Name string

	// L1I/L1D/L2 geometry.
	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L2Size, L2Ways   int
	BlockSize        int

	// Latencies, in cycles, charged on top of the base CPI.
	L2HitPenalty    int // L1 miss hitting in L2
	MemPenalty      int // L2 miss
	BranchMissFlush int // pipeline flush on mispredicted conditional

	// Predictor selects "bimodal" or "gshare".
	Predictor     string
	PredictorBits int
}

// SmallCore returns a modest embedded-class configuration.
func SmallCore() Config {
	return Config{
		Name:    "small-core",
		L1ISize: 8 << 10, L1IWays: 2,
		L1DSize: 8 << 10, L1DWays: 2,
		L2Size: 128 << 10, L2Ways: 4,
		BlockSize:       64,
		L2HitPenalty:    8,
		MemPenalty:      60,
		BranchMissFlush: 6,
		Predictor:       "bimodal",
		PredictorBits:   10,
	}
}

// BigCore returns a desktop-class configuration.
func BigCore() Config {
	return Config{
		Name:    "big-core",
		L1ISize: 32 << 10, L1IWays: 8,
		L1DSize: 32 << 10, L1DWays: 8,
		L2Size: 2 << 20, L2Ways: 16,
		BlockSize:       64,
		L2HitPenalty:    12,
		MemPenalty:      150,
		BranchMissFlush: 14,
		Predictor:       "gshare",
		PredictorBits:   14,
	}
}

// Metrics is the microarchitecture-dependent characterization of one run:
// exactly the numbers the paper's section 6.2 contrasts with the
// microarchitecture-independent MICA set.
type Metrics struct {
	Instructions uint64
	IPC          float64
	L1IMissRate  float64
	L1DMissRate  float64
	L2MissRate   float64
	BranchMiss   float64
}

// Vector returns the metrics as a characterization vector (IPC, three miss
// rates, branch misprediction rate).
func (m Metrics) Vector() []float64 {
	return []float64{m.IPC, m.L1IMissRate, m.L1DMissRate, m.L2MissRate, m.BranchMiss}
}

// VectorNames labels Vector's elements.
func VectorNames() []string {
	return []string{"ipc", "l1i_miss", "l1d_miss", "l2_miss", "bp_miss"}
}

// CPU is an in-order single-issue timing model over the configured memory
// hierarchy and branch predictor: base CPI 1, plus miss penalties.
type CPU struct {
	cfg Config
	l1i *Cache
	l1d *Cache
	l2  *Cache
	bp  BranchPredictor

	instructions uint64
	cycles       uint64
	branches     uint64
}

// NewCPU builds a CPU for the configuration.
func NewCPU(cfg Config) (*CPU, error) {
	l1i, err := NewCache("L1I", cfg.L1ISize, cfg.L1IWays, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache("L1D", cfg.L1DSize, cfg.L1DWays, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache("L2", cfg.L2Size, cfg.L2Ways, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	var bp BranchPredictor
	switch cfg.Predictor {
	case "bimodal":
		bp, err = NewBimodal(cfg.PredictorBits)
	case "gshare":
		bp, err = NewGShare(cfg.PredictorBits, cfg.PredictorBits)
	default:
		return nil, fmt.Errorf("uarch: unknown predictor %q", cfg.Predictor)
	}
	if err != nil {
		return nil, err
	}
	return &CPU{cfg: cfg, l1i: l1i, l1d: l1d, l2: l2, bp: bp}, nil
}

// Record executes one instruction in the timing model.
func (c *CPU) Record(ins *isa.Instruction) {
	cycles := uint64(1)

	// Instruction fetch.
	if !c.l1i.Access(ins.PC) {
		if c.l2.Access(ins.PC) {
			cycles += uint64(c.cfg.L2HitPenalty)
		} else {
			cycles += uint64(c.cfg.MemPenalty)
		}
	}
	// Data access.
	if ins.Op.IsMemRead() || ins.Op.IsMemWrite() {
		if !c.l1d.Access(ins.Addr) {
			if c.l2.Access(ins.Addr) {
				cycles += uint64(c.cfg.L2HitPenalty)
			} else {
				cycles += uint64(c.cfg.MemPenalty)
			}
		}
	}
	// Conditional branches.
	if ins.Op.IsConditional() {
		c.branches++
		if pred := c.bp.Record(ins.PC, ins.Taken); pred != ins.Taken {
			cycles += uint64(c.cfg.BranchMissFlush)
		}
	}

	c.instructions++
	c.cycles += cycles
}

// Metrics returns the run's dependent characterization.
func (c *CPU) Metrics() Metrics {
	m := Metrics{
		Instructions: c.instructions,
		L1IMissRate:  c.l1i.MissRate(),
		L1DMissRate:  c.l1d.MissRate(),
		L2MissRate:   c.l2.MissRate(),
		BranchMiss:   c.bp.MissRate(),
	}
	if c.cycles > 0 {
		m.IPC = float64(c.instructions) / float64(c.cycles)
	}
	return m
}

// Reset clears all machine and statistics state.
func (c *CPU) Reset() {
	c.l1i.Reset()
	c.l1d.Reset()
	c.l2.Reset()
	c.bp.Reset()
	c.instructions = 0
	c.cycles = 0
	c.branches = 0
}
