package uarch_test

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/uarch"
)

// Example runs a small strided loop through the big-core timing model.
func Example() {
	cpu, err := uarch.NewCPU(uarch.BigCore())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// A 16-instruction loop sweeping a 16 KiB buffer: everything fits on
	// the big core after warmup.
	for i := 0; i < 100000; i++ {
		ins := isa.Instruction{PC: 0x400000 + uint64(i%16)*4, Op: isa.OpIntAdd}
		if i%4 == 0 {
			ins.Op = isa.OpLoad
			ins.Addr = 0x10000000 + uint64(i*64%(16<<10))
		}
		cpu.Record(&ins)
	}
	m := cpu.Metrics()
	fmt.Println(m.IPC > 0.9, m.L1DMissRate < 0.05) // warmup misses cost a few percent
	// Output: true true
}
