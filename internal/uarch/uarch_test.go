package uarch

import (
	"math"
	"testing"

	"repro/internal/isa"
)

func mustCache(t *testing.T, size, ways, block int) *Cache {
	t.Helper()
	c, err := NewCache("test", size, ways, block)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheGeometryValidation(t *testing.T) {
	if _, err := NewCache("x", 0, 1, 64); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewCache("x", 1024, 2, 48); err == nil {
		t.Fatal("non-power-of-two block accepted")
	}
	if _, err := NewCache("x", 1000, 2, 64); err == nil {
		t.Fatal("indivisible size accepted")
	}
	if _, err := NewCache("x", 3*64*2, 2, 64); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := mustCache(t, 1024, 2, 64)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("re-access missed")
	}
	if !c.Access(0x1038) { // same 64B block
		t.Fatal("same-block access missed")
	}
	if c.MissRate() != 1.0/3 {
		t.Fatalf("miss rate = %v", c.MissRate())
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2-way, block 64, 2 sets: addresses 0, 128, 256 map to set 0.
	c := mustCache(t, 256, 2, 64)
	c.Access(0)   // miss, install
	c.Access(128) // miss, install (set full)
	c.Access(0)   // hit, 128 becomes LRU
	c.Access(256) // miss, evicts 128
	if !c.Access(0) {
		t.Fatal("most recently used line evicted")
	}
	if c.Access(128) {
		t.Fatal("LRU line not evicted")
	}
}

func TestCacheCapacityBehavior(t *testing.T) {
	// A working set bigger than the cache thrashes; one that fits hits.
	small := mustCache(t, 4<<10, 4, 64)
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 64<<10; addr += 64 {
			small.Access(addr)
		}
	}
	if small.MissRate() < 0.99 {
		t.Fatalf("thrashing working set hit too often: %v", small.MissRate())
	}
	fits := mustCache(t, 64<<10, 4, 64)
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 32<<10; addr += 64 {
			fits.Access(addr)
		}
	}
	if fits.MissRate() > 0.3 {
		t.Fatalf("resident working set missed too often: %v", fits.MissRate())
	}
}

func TestCacheReset(t *testing.T) {
	c := mustCache(t, 1024, 2, 64)
	c.Access(0x40)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("reset did not clear stats")
	}
	if c.Access(0x40) {
		t.Fatal("reset did not clear contents")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b, err := NewBimodal(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		b.Record(0x400, true)
	}
	if b.MissRate() > 0.01 {
		t.Fatalf("bimodal miss rate on constant branch: %v", b.MissRate())
	}
}

func TestBimodalAlternatingPathology(t *testing.T) {
	// The classic bimodal weakness: a strictly alternating branch keeps
	// the counter oscillating and mispredicts heavily.
	b, err := NewBimodal(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		b.Record(0x400, i%2 == 0)
	}
	if b.MissRate() < 0.4 {
		t.Fatalf("bimodal should struggle on alternation, miss rate %v", b.MissRate())
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	g, err := NewGShare(12, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		g.Record(0x400, i%4 != 3) // period-4 pattern
	}
	if g.MissRate() > 0.05 {
		t.Fatalf("gshare miss rate on periodic pattern: %v", g.MissRate())
	}
}

func TestGShareBeatsBimodalOnPatterns(t *testing.T) {
	b, _ := NewBimodal(12)
	g, _ := NewGShare(12, 10)
	for i := 0; i < 5000; i++ {
		taken := i%2 == 0
		b.Record(0x400, taken)
		g.Record(0x400, taken)
	}
	if g.MissRate() >= b.MissRate() {
		t.Fatalf("gshare (%v) not better than bimodal (%v) on alternation", g.MissRate(), b.MissRate())
	}
}

func TestPredictorValidation(t *testing.T) {
	if _, err := NewBimodal(0); err == nil {
		t.Fatal("tiny bimodal accepted")
	}
	if _, err := NewGShare(10, 0); err == nil {
		t.Fatal("zero history accepted")
	}
	if _, err := NewGShare(10, 20); err == nil {
		t.Fatal("history beyond index bits accepted")
	}
}

func TestCPUIdealStreamIPCNearOne(t *testing.T) {
	cpu, err := NewCPU(BigCore())
	if err != nil {
		t.Fatal(err)
	}
	// Tiny loop, no memory, no branches: every fetch hits after warmup.
	for i := 0; i < 100000; i++ {
		ins := isa.Instruction{PC: 0x400000 + uint64(i%16)*4, Op: isa.OpIntAdd}
		cpu.Record(&ins)
	}
	m := cpu.Metrics()
	if m.IPC < 0.99 {
		t.Fatalf("ideal stream IPC = %v", m.IPC)
	}
	if m.Instructions != 100000 {
		t.Fatalf("instructions = %d", m.Instructions)
	}
}

func TestCPUMemoryBoundStreamSlow(t *testing.T) {
	cpu, err := NewCPU(SmallCore())
	if err != nil {
		t.Fatal(err)
	}
	// Random loads over 64 MiB: misses everywhere.
	x := uint64(1)
	for i := 0; i < 50000; i++ {
		x = x*6364136223846793005 + 1
		ins := isa.Instruction{
			PC:   0x400000 + uint64(i%16)*4,
			Op:   isa.OpLoad,
			Addr: 0x10000000 + (x % (64 << 20)),
		}
		cpu.Record(&ins)
	}
	m := cpu.Metrics()
	if m.IPC > 0.2 {
		t.Fatalf("memory-bound IPC = %v, expected much below 1", m.IPC)
	}
	if m.L1DMissRate < 0.9 {
		t.Fatalf("random 64MiB loads should thrash L1D: %v", m.L1DMissRate)
	}
}

func TestCPUConfigsDiffer(t *testing.T) {
	// The same instruction stream must measure differently on the two
	// configurations — the premise of the dependent-characterization
	// ablation.
	// Repeated strided sweep over 512 KiB: resident in the big core's
	// 2 MiB L2, far beyond the small core's 128 KiB L2 — capacity, not
	// compulsory misses, must separate the configurations.
	run := func(cfg Config) Metrics {
		cpu, err := NewCPU(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const region = 512 << 10
		i := 0
		for pass := 0; pass < 8; pass++ {
			for off := uint64(0); off < region; off += 64 {
				ins := isa.Instruction{PC: 0x400000 + uint64(i%64)*4, Op: isa.OpLoad, Addr: 0x10000000 + off}
				cpu.Record(&ins)
				i++
			}
		}
		return cpu.Metrics()
	}
	small := run(SmallCore())
	big := run(BigCore())
	if math.Abs(small.IPC-big.IPC) < 1e-6 {
		t.Fatal("configurations produced identical IPC")
	}
	if big.IPC <= 2*small.IPC {
		t.Fatalf("big core (%v) not clearly faster than small core (%v) on an L2-resident sweep", big.IPC, small.IPC)
	}
	if small.L2MissRate < 0.5 || big.L2MissRate > 0.5 {
		t.Fatalf("L2 capacity effect missing: small %v, big %v", small.L2MissRate, big.L2MissRate)
	}
}

func TestCPUValidation(t *testing.T) {
	cfg := SmallCore()
	cfg.Predictor = "oracle"
	if _, err := NewCPU(cfg); err == nil {
		t.Fatal("unknown predictor accepted")
	}
	cfg = SmallCore()
	cfg.L1ISize = 100
	if _, err := NewCPU(cfg); err == nil {
		t.Fatal("bad cache geometry accepted")
	}
}

func TestMetricsVector(t *testing.T) {
	m := Metrics{IPC: 0.5, L1IMissRate: 0.1, L1DMissRate: 0.2, L2MissRate: 0.3, BranchMiss: 0.4}
	v := m.Vector()
	names := VectorNames()
	if len(v) != len(names) {
		t.Fatalf("vector/name length mismatch: %d vs %d", len(v), len(names))
	}
	if v[0] != 0.5 || v[4] != 0.4 {
		t.Fatalf("vector layout wrong: %v", v)
	}
}

func TestCPUReset(t *testing.T) {
	cpu, err := NewCPU(SmallCore())
	if err != nil {
		t.Fatal(err)
	}
	ins := isa.Instruction{PC: 0x400000, Op: isa.OpLoad, Addr: 0x1000}
	cpu.Record(&ins)
	cpu.Reset()
	m := cpu.Metrics()
	if m.Instructions != 0 || m.IPC != 0 {
		t.Fatalf("reset left stats: %+v", m)
	}
}
