package viz

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders a single-series vertical bar chart (Figures 4 and 6 of
// the paper: one bar per benchmark suite).
type BarChart struct {
	Title  string
	YLabel string
	Labels []string
	Values []float64
	// YMax fixes the axis maximum; 0 auto-scales.
	YMax float64
}

// SVG renders the chart as a standalone <svg> element.
func (c *BarChart) SVG() (string, error) {
	if len(c.Labels) == 0 || len(c.Labels) != len(c.Values) {
		return "", fmt.Errorf("viz: bar chart with %d labels and %d values", len(c.Labels), len(c.Values))
	}
	const (
		w      = 460.0
		h      = 300.0
		left   = 56.0
		right  = 12.0
		top    = 34.0
		bottom = 78.0
	)
	ymax := c.YMax
	if ymax <= 0 {
		for _, v := range c.Values {
			if v > ymax {
				ymax = v
			}
		}
		if ymax == 0 {
			ymax = 1
		}
		ymax *= 1.1
	}
	plotW := w - left - right
	plotH := h - top - bottom
	n := float64(len(c.Values))
	barW := plotW / n * 0.62

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`, w, h, w, h)
	fmt.Fprintf(&b, `<text x="%.1f" y="16" font-size="12" text-anchor="middle" font-family="sans-serif">%s</text>`, w/2, escape(c.Title))
	// Axes and gridlines.
	for i := 0; i <= 4; i++ {
		y := top + plotH*float64(i)/4
		val := ymax * float64(4-i) / 4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd" stroke-width="0.7"/>`, left, y, w-right, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="end" font-family="sans-serif">%.3g</text>`, left-4, y+3, val)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="12" y="%.1f" font-size="10" text-anchor="middle" font-family="sans-serif" transform="rotate(-90 12 %.1f)">%s</text>`,
			top+plotH/2, top+plotH/2, escape(c.YLabel))
	}
	for i, v := range c.Values {
		x := left + plotW*(float64(i)+0.5)/n - barW/2
		bh := plotH * v / ymax
		if bh < 0 {
			bh = 0
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#4477aa"/>`, x, top+plotH-bh, barW, bh)
		lx := left + plotW*(float64(i)+0.5)/n
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="end" font-family="sans-serif" transform="rotate(-40 %.1f %.1f)">%s</text>`,
			lx, top+plotH+12, lx, top+plotH+12, escape(c.Labels[i]))
	}
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333333" stroke-width="1"/>`, left, top+plotH, w-right, top+plotH)
	b.WriteString(`</svg>`)
	return b.String(), nil
}

// Series is one line of a LineChart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart renders a multi-series line chart (Figure 1's GA correlation
// curve, Figure 5's cumulative-coverage curves).
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	YMax   float64 // 0 auto-scales
}

// SVG renders the chart as a standalone <svg> element with a legend.
func (c *LineChart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("viz: line chart with no series")
	}
	const (
		w      = 520.0
		h      = 320.0
		left   = 56.0
		right  = 130.0
		top    = 34.0
		bottom = 48.0
	)
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := c.YMax
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("viz: series %q has %d x for %d y", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("viz: series %q is empty", s.Name)
		}
		for i := range s.X {
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if c.YMax <= 0 && s.Y[i] > ymax {
				ymax = s.Y[i]
			}
		}
	}
	if ymax <= 0 {
		ymax = 1
	}
	if c.YMax <= 0 {
		ymax *= 1.05
	}
	if xmax <= xmin {
		xmax = xmin + 1
	}
	plotW := w - left - right
	plotH := h - top - bottom
	px := func(x float64) float64 { return left + plotW*(x-xmin)/(xmax-xmin) }
	py := func(y float64) float64 {
		r := y / ymax
		if r < 0 {
			r = 0
		}
		if r > 1 {
			r = 1
		}
		return top + plotH*(1-r)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`, w, h, w, h)
	fmt.Fprintf(&b, `<text x="%.1f" y="16" font-size="12" text-anchor="middle" font-family="sans-serif">%s</text>`, w/2, escape(c.Title))
	for i := 0; i <= 4; i++ {
		y := top + plotH*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd" stroke-width="0.7"/>`, left, y, w-right, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="end" font-family="sans-serif">%.3g</text>`, left-4, y+3, ymax*float64(4-i)/4)
	}
	for i := 0; i <= 4; i++ {
		x := left + plotW*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="middle" font-family="sans-serif">%.3g</text>`, x, top+plotH+14, xmin+(xmax-xmin)*float64(i)/4)
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" font-family="sans-serif">%s</text>`, left+plotW/2, h-8, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="12" y="%.1f" font-size="10" text-anchor="middle" font-family="sans-serif" transform="rotate(-90 12 %.1f)">%s</text>`, top+plotH/2, top+plotH/2, escape(c.YLabel))
	}
	for si, s := range c.Series {
		color := pieColors[si%len(pieColors)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`, strings.Join(pts, " "), color)
		ly := top + 6 + 14*float64(si)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`, w-right+8, ly, w-right+24, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" font-family="sans-serif">%s</text>`, w-right+28, ly+3, escape(s.Name))
	}
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333333" stroke-width="1"/>`, left, top+plotH, w-right, top+plotH)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333333" stroke-width="1"/>`, left, top, left, top+plotH)
	b.WriteString(`</svg>`)
	return b.String(), nil
}

// Cell is one unit of a phase-figure grid: a kiviat plot, its composition
// pie and the represented-benchmark list.
type Cell struct {
	Kiviat Kiviat
	Pie    Pie
	// Note lines are drawn under the pie (the paper's benchmark list with
	// percentages).
	Note []string
}

// Grid renders cells in rows of Columns cells each, as one SVG document —
// the layout of the paper's Figures 2 and 3.
type Grid struct {
	Title   string
	Columns int
	Cells   []Cell
}

// SVG renders the grid.
func (g *Grid) SVG() (string, error) {
	if len(g.Cells) == 0 {
		return "", fmt.Errorf("viz: empty grid")
	}
	cols := g.Columns
	if cols <= 0 {
		cols = 4
	}
	const (
		cellW = 590.0
		cellH = 270.0
		headH = 24.0
	)
	rows := (len(g.Cells) + cols - 1) / cols
	w := cellW * float64(cols)
	h := headH + cellH*float64(rows)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`, w, h, w, h)
	fmt.Fprintf(&b, `<text x="%.1f" y="16" font-size="13" text-anchor="middle" font-family="sans-serif">%s</text>`, w/2, escape(g.Title))
	for i := range g.Cells {
		cell := &g.Cells[i]
		x := cellW * float64(i%cols)
		y := headH + cellH*float64(i/cols)
		ksvg, err := cell.Kiviat.SVG()
		if err != nil {
			return "", fmt.Errorf("viz: grid cell %d kiviat: %w", i, err)
		}
		psvg, err := cell.Pie.SVG()
		if err != nil {
			return "", fmt.Errorf("viz: grid cell %d pie: %w", i, err)
		}
		fmt.Fprintf(&b, `<g transform="translate(%.1f,%.1f)">%s</g>`, x, y, inner(ksvg))
		fmt.Fprintf(&b, `<g transform="translate(%.1f,%.1f)">%s</g>`, x+kiviatSize+10, y+20, inner(psvg))
		for j, line := range cell.Note {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="8" font-family="sans-serif">%s</text>`,
				x+kiviatSize+10, y+175+float64(j)*10, escape(line))
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#eeeeee"/>`, x+2, y+2, cellW-4, cellH-4)
	}
	b.WriteString(`</svg>`)
	return b.String(), nil
}

// inner strips the outer <svg ...> wrapper so the fragment can be nested
// inside a <g> transform.
func inner(svg string) string {
	start := strings.Index(svg, ">")
	end := strings.LastIndex(svg, "</svg>")
	if start < 0 || end < 0 || end <= start {
		return svg
	}
	return svg[start+1 : end]
}

// ASCII renders the bar chart as a horizontal text chart.
func (c *BarChart) ASCII(width int) (string, error) {
	if len(c.Labels) == 0 || len(c.Labels) != len(c.Values) {
		return "", fmt.Errorf("viz: bar chart with %d labels and %d values", len(c.Labels), len(c.Values))
	}
	if width < 10 {
		width = 10
	}
	ymax := c.YMax
	if ymax <= 0 {
		for _, v := range c.Values {
			if v > ymax {
				ymax = v
			}
		}
		if ymax == 0 {
			ymax = 1
		}
	}
	labelW := 0
	for _, l := range c.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, v := range c.Values {
		n := int(v / ymax * float64(width))
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&b, "  %-*s %s %.4g\n", labelW, c.Labels[i], strings.Repeat("#", n), v)
	}
	return b.String(), nil
}

// ASCII renders each series of the line chart as a sparkline.
func (c *LineChart) ASCII(width int) (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("viz: line chart with no series")
	}
	if width < 10 {
		width = 10
	}
	ymax := c.YMax
	if ymax <= 0 {
		for _, s := range c.Series {
			for _, y := range s.Y {
				if y > ymax {
					ymax = y
				}
			}
		}
		if ymax == 0 {
			ymax = 1
		}
	}
	ramp := []rune(" .:-=+*#%@")
	nameW := 0
	for _, s := range c.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Y) == 0 {
			return "", fmt.Errorf("viz: series %q is empty", s.Name)
		}
		line := make([]rune, width)
		for i := range line {
			// Sample the series at this column.
			idx := i * (len(s.Y) - 1) / max(width-1, 1)
			frac := s.Y[idx] / ymax
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			line[i] = ramp[int(frac*float64(len(ramp)-1))]
		}
		fmt.Fprintf(&b, "  %-*s |%s| max %.4g\n", nameW, s.Name, string(line), s.Y[len(s.Y)-1])
	}
	return b.String(), nil
}
