package viz

import (
	"fmt"
	"strings"
)

// DendroMerge mirrors one agglomeration step of a hierarchical clustering
// (node ids: 0..leaves-1 are leaves; leaves+i is the node made by step i).
type DendroMerge struct {
	A, B     int
	Distance float64
}

// Dendrogram renders an average-linkage hierarchy as a left-to-right SVG
// tree with leaf labels — the benchmark-similarity view of the workload
// space.
type Dendrogram struct {
	Title  string
	Labels []string
	Merges []DendroMerge
	// LeafOrder is the display order of the leaves (top to bottom).
	LeafOrder []int
}

// SVG renders the dendrogram.
func (d *Dendrogram) SVG() (string, error) {
	n := len(d.Labels)
	if n < 2 {
		return "", fmt.Errorf("viz: dendrogram needs at least 2 leaves")
	}
	if len(d.Merges) != n-1 {
		return "", fmt.Errorf("viz: dendrogram with %d leaves needs %d merges, have %d", n, n-1, len(d.Merges))
	}
	order := d.LeafOrder
	if len(order) == 0 {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != n {
		return "", fmt.Errorf("viz: leaf order has %d entries for %d leaves", len(order), n)
	}

	const (
		rowH   = 16.0
		top    = 30.0
		right  = 14.0
		plotW  = 430.0
		labelW = 150.0
	)
	height := top + rowH*float64(n) + 10
	width := plotW + labelW + right

	// Vertical position of each node: leaves at their display row,
	// internal nodes midway between their children.
	y := make([]float64, n+len(d.Merges))
	for row, leaf := range order {
		if leaf < 0 || leaf >= n {
			return "", fmt.Errorf("viz: leaf order entry %d out of range", leaf)
		}
		y[leaf] = top + rowH*(float64(row)+0.5)
	}
	// Horizontal position: distance scaled to [0, plotW], leaves at x=plotW
	// (right side, labels next to them), root towards x=0.
	maxDist := 0.0
	for _, m := range d.Merges {
		if m.Distance > maxDist {
			maxDist = m.Distance
		}
	}
	if maxDist == 0 {
		maxDist = 1
	}
	xOf := func(dist float64) float64 { return plotW * (1 - dist/maxDist) }

	x := make([]float64, n+len(d.Merges))
	for i := 0; i < n; i++ {
		x[i] = plotW
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		width, height, width, height)
	fmt.Fprintf(&b, `<text x="%.1f" y="16" font-size="12" text-anchor="middle" font-family="sans-serif">%s</text>`,
		width/2, escape(d.Title))

	for i, m := range d.Merges {
		id := n + i
		if m.A < 0 || m.A >= id || m.B < 0 || m.B >= id {
			return "", fmt.Errorf("viz: merge %d references invalid nodes (%d, %d)", i, m.A, m.B)
		}
		nx := xOf(m.Distance)
		y[id] = (y[m.A] + y[m.B]) / 2
		x[id] = nx
		// Two horizontal legs into the vertical connector.
		fmt.Fprintf(&b, `<path d="M%.1f,%.1f L%.1f,%.1f L%.1f,%.1f L%.1f,%.1f" fill="none" stroke="#4477aa" stroke-width="1.1"/>`,
			x[m.A], y[m.A], nx, y[m.A], nx, y[m.B], x[m.B], y[m.B])
	}
	for row, leaf := range order {
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" font-family="sans-serif">%s</text>`,
			plotW+6, top+rowH*(float64(row)+0.5)+3, escape(d.Labels[leaf]))
	}
	b.WriteString(`</svg>`)
	return b.String(), nil
}
