package viz_test

import (
	"fmt"
	"strings"

	"repro/internal/viz"
)

// Example renders a kiviat plot for one phase and checks the SVG came out.
func Example() {
	axes, err := viz.AxesFromPopulation(
		[]string{"load_frac", "ilp_64", "ppm_miss"},
		[][]float64{
			{0.10, 2.0, 0.40},
			{0.25, 6.5, 0.05},
			{0.32, 9.0, 0.02},
		})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	k := viz.Kiviat{
		Title:  "weight: 4.87%",
		Axes:   axes,
		Values: []float64{0.25, 6.5, 0.05},
	}
	svg, err := k.SVG()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(strings.HasPrefix(svg, "<svg"), strings.Contains(svg, "weight: 4.87%"))
	// Output: true true
}
