package viz

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap renders a labelled matrix of values in [0, 1] as an SVG grid,
// used for the suite-similarity extension.
type Heatmap struct {
	Title string
	// RowLabels and ColLabels name the axes; Values[i][j] is row i,
	// column j, expected in [0, 1] (values are clamped for colouring).
	RowLabels []string
	ColLabels []string
	Values    [][]float64
}

// SVG renders the heatmap with per-cell value annotations.
func (h *Heatmap) SVG() (string, error) {
	if len(h.Values) == 0 || len(h.RowLabels) != len(h.Values) {
		return "", fmt.Errorf("viz: heatmap with %d rows and %d row labels", len(h.Values), len(h.RowLabels))
	}
	for i, row := range h.Values {
		if len(row) != len(h.ColLabels) {
			return "", fmt.Errorf("viz: heatmap row %d has %d values for %d columns", i, len(row), len(h.ColLabels))
		}
	}
	const (
		cell   = 44.0
		left   = 110.0
		top    = 70.0
		bottom = 14.0
	)
	rows := len(h.RowLabels)
	cols := len(h.ColLabels)
	w := left + cell*float64(cols) + 14
	ht := top + cell*float64(rows) + bottom

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`, w, ht, w, ht)
	fmt.Fprintf(&b, `<text x="%.1f" y="16" font-size="12" text-anchor="middle" font-family="sans-serif">%s</text>`, w/2, escape(h.Title))
	for j, label := range h.ColLabels {
		x := left + cell*(float64(j)+0.5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="start" font-family="sans-serif" transform="rotate(-45 %.1f %.1f)">%s</text>`,
			x, top-8, x, top-8, escape(label))
	}
	for i, label := range h.RowLabels {
		y := top + cell*(float64(i)+0.5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="end" font-family="sans-serif">%s</text>`, left-6, y+3, escape(label))
	}
	for i := range h.Values {
		for j, v := range h.Values[i] {
			cv := math.Max(0, math.Min(1, v))
			// White -> blue ramp.
			rCh := int(255 - 187*cv)
			gCh := int(255 - 136*cv)
			bCh := int(255 - 85*cv)
			x := left + cell*float64(j)
			y := top + cell*float64(i)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,%d,%d)" stroke="#ffffff"/>`,
				x, y, cell, cell, rCh, gCh, bCh)
			textColor := "#222222"
			if cv > 0.6 {
				textColor = "#ffffff"
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="middle" fill="%s" font-family="sans-serif">%.2f</text>`,
				x+cell/2, y+cell/2+3, textColor, v)
		}
	}
	b.WriteString(`</svg>`)
	return b.String(), nil
}

// ASCII renders the heatmap as a plain table.
func (h *Heatmap) ASCII() string {
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	labelW := 0
	for _, l := range h.RowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	fmt.Fprintf(&b, "%*s", labelW+2, "")
	for _, l := range h.ColLabels {
		short := l
		if len(short) > 6 {
			short = short[:6]
		}
		fmt.Fprintf(&b, " %6s", short)
	}
	b.WriteString("\n")
	for i, l := range h.RowLabels {
		fmt.Fprintf(&b, "  %-*s", labelW, l)
		for _, v := range h.Values[i] {
			fmt.Fprintf(&b, " %6.2f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}
