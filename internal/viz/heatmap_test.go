package viz

import (
	"strings"
	"testing"
)

func sampleHeatmap() Heatmap {
	return Heatmap{
		Title:     "similarity",
		RowLabels: []string{"A", "B"},
		ColLabels: []string{"A", "B"},
		Values:    [][]float64{{1, 0.25}, {0.75, 1}},
	}
}

func TestHeatmapSVG(t *testing.T) {
	h := sampleHeatmap()
	svg, err := h.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "similarity", "0.25", "0.75", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("heatmap SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<rect"); got != 4 {
		t.Fatalf("heatmap has %d cells, want 4", got)
	}
}

func TestHeatmapClampsOutOfRange(t *testing.T) {
	h := sampleHeatmap()
	h.Values[0][1] = 7 // clamped for colour, printed as-is
	svg, err := h.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "7.00") {
		t.Fatal("out-of-range value not annotated")
	}
	if strings.Contains(svg, "rgb(-") {
		t.Fatal("out-of-range value produced invalid colour")
	}
}

func TestHeatmapValidation(t *testing.T) {
	if _, err := (&Heatmap{}).SVG(); err == nil {
		t.Fatal("empty heatmap accepted")
	}
	bad := sampleHeatmap()
	bad.Values = [][]float64{{1}}
	if _, err := bad.SVG(); err == nil {
		t.Fatal("ragged heatmap accepted")
	}
	bad2 := sampleHeatmap()
	bad2.RowLabels = []string{"only"}
	if _, err := bad2.SVG(); err == nil {
		t.Fatal("label/row mismatch accepted")
	}
}

func TestHeatmapASCII(t *testing.T) {
	h := sampleHeatmap()
	out := h.ASCII()
	for _, want := range []string{"similarity", "1.00", "0.25", "0.75"} {
		if !strings.Contains(out, want) {
			t.Fatalf("heatmap ASCII missing %q:\n%s", want, out)
		}
	}
}
