// Package viz renders the paper's visualizations: kiviat (radar) plots of
// prominent phase behaviours with mean/±1-standard-deviation rings, pie
// charts of per-cluster benchmark composition, and multi-cell figure grids
// — as self-contained SVG, plus a terminal-friendly ASCII rendering.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Axis describes one kiviat axis: a named characteristic and its scale
// statistics over the population of plotted phases (the paper's rings are
// the population mean and mean ± one standard deviation; the center and
// outer ring are the population minimum and maximum).
type Axis struct {
	Name string
	Min  float64
	Max  float64
	Mean float64
	Std  float64
}

// normalize maps a raw value onto [0, 1] radius along the axis.
func (ax Axis) normalize(v float64) float64 {
	if ax.Max <= ax.Min {
		return 0.5
	}
	r := (v - ax.Min) / (ax.Max - ax.Min)
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	return r
}

// Kiviat is one kiviat plot: a phase's values over the key characteristics.
type Kiviat struct {
	// Title is drawn above the plot (e.g. "weight: 4.87%").
	Title string
	// Axes defines the plot's dimensions, clockwise from 12 o'clock.
	Axes []Axis
	// Values are the phase's raw characteristic values, parallel to Axes.
	Values []float64
}

// Validate reports structural problems.
func (k *Kiviat) Validate() error {
	if len(k.Axes) < 3 {
		return fmt.Errorf("viz: kiviat needs at least 3 axes, have %d", len(k.Axes))
	}
	if len(k.Values) != len(k.Axes) {
		return fmt.Errorf("viz: kiviat has %d values for %d axes", len(k.Values), len(k.Axes))
	}
	return nil
}

// svgStyle holds shared drawing constants.
const (
	kiviatSize   = 240.0 // px, square
	kiviatMargin = 34.0
)

func polarXY(cx, cy, r, frac float64, i, n int) (float64, float64) {
	theta := 2*math.Pi*float64(i)/float64(n) - math.Pi/2
	return cx + r*frac*math.Cos(theta), cy + r*frac*math.Sin(theta)
}

// SVG renders the kiviat as a standalone SVG document fragment (one <svg>
// element) with the phase polygon in dark grey and the mean / ±1-sd rings,
// following the paper's Figure 2 legend.
func (k *Kiviat) SVG() (string, error) {
	if err := k.Validate(); err != nil {
		return "", err
	}
	n := len(k.Axes)
	cx, cy := kiviatSize/2, kiviatSize/2+8
	radius := kiviatSize/2 - kiviatMargin

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		kiviatSize, kiviatSize+16, kiviatSize, kiviatSize+16)
	fmt.Fprintf(&b, `<text x="%.1f" y="14" font-size="11" text-anchor="middle" font-family="sans-serif">%s</text>`,
		cx, escape(k.Title))

	// Outer ring (max) and center dot (min).
	ring := func(frac float64, stroke string, dash string) {
		var pts []string
		for i := 0; i < n; i++ {
			x, y := polarXY(cx, cy, radius, frac, i, n)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		dashAttr := ""
		if dash != "" {
			dashAttr = fmt.Sprintf(` stroke-dasharray="%s"`, dash)
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="none" stroke="%s" stroke-width="0.8"%s/>`,
			strings.Join(pts, " "), stroke, dashAttr)
	}
	ring(1, "#333333", "")

	// Per-axis rings for mean-sd, mean, mean+sd (positions differ per
	// axis, so these are polylines through per-axis normalized points).
	statRing := func(pick func(Axis) float64, stroke, dash string) {
		var pts []string
		for i, ax := range k.Axes {
			x, y := polarXY(cx, cy, radius, ax.normalize(pick(ax)), i, n)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="none" stroke="%s" stroke-width="0.8" stroke-dasharray="%s"/>`,
			strings.Join(pts, " "), stroke, dash)
	}
	statRing(func(ax Axis) float64 { return ax.Mean - ax.Std }, "#999999", "2,2")
	statRing(func(ax Axis) float64 { return ax.Mean }, "#777777", "4,2")
	statRing(func(ax Axis) float64 { return ax.Mean + ax.Std }, "#999999", "2,2")

	// Axis spokes and labels.
	for i, ax := range k.Axes {
		x, y := polarXY(cx, cy, radius, 1, i, n)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#cccccc" stroke-width="0.6"/>`,
			cx, cy, x, y)
		lx, ly := polarXY(cx, cy, radius+12, 1, i, n)
		anchor := "middle"
		switch {
		case lx > cx+4:
			anchor = "start"
		case lx < cx-4:
			anchor = "end"
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="7" text-anchor="%s" font-family="sans-serif">%s</text>`,
			lx, ly+2, anchor, escape(ax.Name))
	}

	// The phase polygon.
	var pts []string
	for i, ax := range k.Axes {
		x, y := polarXY(cx, cy, radius, ax.normalize(k.Values[i]), i, n)
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
	}
	fmt.Fprintf(&b, `<polygon points="%s" fill="#555555" fill-opacity="0.55" stroke="#222222" stroke-width="1"/>`,
		strings.Join(pts, " "))

	b.WriteString(`</svg>`)
	return b.String(), nil
}

// ASCII renders the kiviat as a fixed-width bar chart: one row per axis,
// with the value position (#), the mean (|) and the ±1 sd band (-) marked.
func (k *Kiviat) ASCII(width int) (string, error) {
	if err := k.Validate(); err != nil {
		return "", err
	}
	if width < 20 {
		width = 20
	}
	nameW := 0
	for _, ax := range k.Axes {
		if len(ax.Name) > nameW {
			nameW = len(ax.Name)
		}
	}
	var b strings.Builder
	if k.Title != "" {
		fmt.Fprintf(&b, "%s\n", k.Title)
	}
	for i, ax := range k.Axes {
		bar := make([]byte, width)
		for j := range bar {
			bar[j] = ' '
		}
		mark := func(v float64, c byte) {
			p := int(ax.normalize(v) * float64(width-1))
			if bar[p] == ' ' || c == '#' {
				bar[p] = c
			}
		}
		lo := int(ax.normalize(ax.Mean-ax.Std) * float64(width-1))
		hi := int(ax.normalize(ax.Mean+ax.Std) * float64(width-1))
		for j := lo; j <= hi && j < width; j++ {
			bar[j] = '-'
		}
		mark(ax.Mean, '|')
		mark(k.Values[i], '#')
		fmt.Fprintf(&b, "  %-*s [%s] %.4g\n", nameW, ax.Name, string(bar), k.Values[i])
	}
	return b.String(), nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// AxesFromPopulation derives kiviat axes (min/max/mean/std per dimension)
// from a population of value vectors, typically the prominent phases.
func AxesFromPopulation(names []string, rows [][]float64) ([]Axis, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("viz: empty population")
	}
	n := len(names)
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("viz: population row %d has %d values for %d axes", i, len(r), n)
		}
	}
	axes := make([]Axis, n)
	for j := 0; j < n; j++ {
		ax := Axis{Name: names[j], Min: math.Inf(1), Max: math.Inf(-1)}
		var sum float64
		for _, r := range rows {
			v := r[j]
			sum += v
			if v < ax.Min {
				ax.Min = v
			}
			if v > ax.Max {
				ax.Max = v
			}
		}
		ax.Mean = sum / float64(len(rows))
		var ss float64
		for _, r := range rows {
			d := r[j] - ax.Mean
			ss += d * d
		}
		ax.Std = math.Sqrt(ss / float64(len(rows)))
		axes[j] = ax
	}
	return axes, nil
}
