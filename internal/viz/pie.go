package viz

import (
	"fmt"
	"math"
	"strings"
)

// Slice is one pie-chart segment.
type Slice struct {
	// Label names the segment (e.g. a benchmark).
	Label string
	// Fraction is the segment's share in [0, 1]; fractions should sum to
	// roughly 1 (they are renormalized for drawing).
	Fraction float64
}

// Pie is a pie chart of a cluster's benchmark composition.
type Pie struct {
	Title  string
	Slices []Slice
}

// pieColors is a colour-blind-tolerant greyscale-plus-hatch substitute:
// distinct fills cycled across slices.
var pieColors = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44",
	"#66ccee", "#aa3377", "#bbbbbb", "#222255",
	"#999944", "#dd7788", "#44aa99", "#884411",
}

// SVG renders the pie as a standalone <svg> element with a legend.
func (p *Pie) SVG() (string, error) {
	if len(p.Slices) == 0 {
		return "", fmt.Errorf("viz: pie with no slices")
	}
	var total float64
	for _, s := range p.Slices {
		if s.Fraction < 0 {
			return "", fmt.Errorf("viz: pie slice %q has negative fraction", s.Label)
		}
		total += s.Fraction
	}
	if total <= 0 {
		return "", fmt.Errorf("viz: pie with zero total")
	}

	const (
		r       = 52.0
		cx      = 64.0
		cy      = 78.0
		legendX = 136.0
		width   = 320.0
	)
	height := math.Max(150, 34+14*float64(len(p.Slices)))

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		width, height, width, height)
	if p.Title != "" {
		fmt.Fprintf(&b, `<text x="8" y="14" font-size="11" font-family="sans-serif">%s</text>`, escape(p.Title))
	}

	angle := -math.Pi / 2
	for i, s := range p.Slices {
		frac := s.Fraction / total
		color := pieColors[i%len(pieColors)]
		if frac >= 0.999999 {
			// Full circle: a single arc path degenerates, use <circle>.
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#ffffff" stroke-width="1"/>`,
				cx, cy, r, color)
		} else {
			a2 := angle + 2*math.Pi*frac
			x1, y1 := cx+r*math.Cos(angle), cy+r*math.Sin(angle)
			x2, y2 := cx+r*math.Cos(a2), cy+r*math.Sin(a2)
			large := 0
			if frac > 0.5 {
				large = 1
			}
			fmt.Fprintf(&b, `<path d="M%.1f,%.1f L%.1f,%.1f A%.1f,%.1f 0 %d 1 %.1f,%.1f Z" fill="%s" stroke="#ffffff" stroke-width="1"/>`,
				cx, cy, x1, y1, r, r, large, x2, y2, color)
			angle = a2
		}
		// Legend row.
		ly := 34 + 14*float64(i)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="9" height="9" fill="%s"/>`, legendX, ly-8, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" font-family="sans-serif">%s (%.0f%%)</text>`,
			legendX+13, ly, escape(s.Label), 100*frac)
	}
	b.WriteString(`</svg>`)
	return b.String(), nil
}

// ASCII renders the pie as a simple percentage table.
func (p *Pie) ASCII() string {
	var total float64
	for _, s := range p.Slices {
		total += s.Fraction
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for _, s := range p.Slices {
		frac := 0.0
		if total > 0 {
			frac = s.Fraction / total
		}
		fmt.Fprintf(&b, "  %5.1f%%  %s\n", 100*frac, s.Label)
	}
	return b.String()
}
