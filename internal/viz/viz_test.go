package viz

import (
	"strings"
	"testing"
)

func sampleAxes() []Axis {
	return []Axis{
		{Name: "a", Min: 0, Max: 1, Mean: 0.5, Std: 0.2},
		{Name: "b", Min: 0, Max: 10, Mean: 4, Std: 2},
		{Name: "c", Min: -1, Max: 1, Mean: 0, Std: 0.5},
		{Name: "d", Min: 0, Max: 100, Mean: 50, Std: 25},
	}
}

func TestKiviatSVG(t *testing.T) {
	k := Kiviat{Title: "weight: 4.87%", Axes: sampleAxes(), Values: []float64{0.2, 8, -0.5, 99}}
	svg, err := k.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "weight: 4.87%", "polygon", ">a<", ">d<"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("kiviat SVG missing %q", want)
		}
	}
	// 1 outer ring + 3 stat rings + 1 value polygon = 5 polygons.
	if got := strings.Count(svg, "<polygon"); got != 5 {
		t.Fatalf("kiviat has %d polygons, want 5", got)
	}
}

func TestKiviatValidation(t *testing.T) {
	k := Kiviat{Axes: sampleAxes()[:2], Values: []float64{1, 2}}
	if _, err := k.SVG(); err == nil {
		t.Fatal("two-axis kiviat accepted")
	}
	k2 := Kiviat{Axes: sampleAxes(), Values: []float64{1}}
	if _, err := k2.SVG(); err == nil {
		t.Fatal("mismatched values accepted")
	}
	if _, err := k2.ASCII(40); err == nil {
		t.Fatal("ASCII accepted invalid kiviat")
	}
}

func TestKiviatASCII(t *testing.T) {
	k := Kiviat{Title: "t", Axes: sampleAxes(), Values: []float64{0.2, 8, -0.5, 99}}
	out, err := k.ASCII(40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "a") {
		t.Fatalf("ASCII kiviat malformed:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 5 { // title + 4 axes
		t.Fatalf("ASCII kiviat has %d lines", got)
	}
}

func TestAxisNormalizeClamps(t *testing.T) {
	ax := Axis{Min: 0, Max: 10}
	if ax.normalize(-5) != 0 || ax.normalize(50) != 1 {
		t.Fatal("normalize does not clamp")
	}
	if ax.normalize(5) != 0.5 {
		t.Fatal("normalize midpoint wrong")
	}
	flat := Axis{Min: 3, Max: 3}
	if flat.normalize(3) != 0.5 {
		t.Fatal("degenerate axis should map to center")
	}
}

func TestAxesFromPopulation(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	axes, err := AxesFromPopulation([]string{"x", "y"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	if axes[0].Min != 1 || axes[0].Max != 5 || axes[0].Mean != 3 {
		t.Fatalf("axis x stats wrong: %+v", axes[0])
	}
	if axes[1].Std != 0 {
		t.Fatalf("constant axis std = %v", axes[1].Std)
	}
	if _, err := AxesFromPopulation([]string{"x"}, nil); err == nil {
		t.Fatal("empty population accepted")
	}
	if _, err := AxesFromPopulation([]string{"x", "y"}, [][]float64{{1}}); err == nil {
		t.Fatal("ragged population accepted")
	}
}

func TestPieSVG(t *testing.T) {
	p := Pie{Title: "cluster", Slices: []Slice{
		{Label: "fasta", Fraction: 0.7},
		{Label: "astar", Fraction: 0.3},
	}}
	svg, err := p.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "fasta", "astar", "<path", "(70%)", "(30%)"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("pie SVG missing %q", want)
		}
	}
}

func TestPieFullCircle(t *testing.T) {
	p := Pie{Slices: []Slice{{Label: "only", Fraction: 1}}}
	svg, err := p.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<circle") {
		t.Fatal("single-slice pie should render a circle")
	}
}

func TestPieValidation(t *testing.T) {
	if _, err := (&Pie{}).SVG(); err == nil {
		t.Fatal("empty pie accepted")
	}
	if _, err := (&Pie{Slices: []Slice{{Label: "x", Fraction: -1}}}).SVG(); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if _, err := (&Pie{Slices: []Slice{{Label: "x", Fraction: 0}}}).SVG(); err == nil {
		t.Fatal("zero-total pie accepted")
	}
}

func TestPieASCII(t *testing.T) {
	p := Pie{Title: "t", Slices: []Slice{{Label: "a", Fraction: 3}, {Label: "b", Fraction: 1}}}
	out := p.ASCII()
	if !strings.Contains(out, "75.0%") || !strings.Contains(out, "25.0%") {
		t.Fatalf("pie ASCII fractions wrong:\n%s", out)
	}
}

func TestBarChartSVG(t *testing.T) {
	c := BarChart{Title: "Fig 4", YLabel: "clusters", Labels: []string{"A", "B"}, Values: []float64{10, 20}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 4", "clusters", ">A<", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("bar chart missing %q", want)
		}
	}
	if got := strings.Count(svg, "<rect"); got != 2 {
		t.Fatalf("bar chart has %d rects, want 2", got)
	}
}

func TestBarChartValidation(t *testing.T) {
	if _, err := (&BarChart{Labels: []string{"a"}, Values: nil}).SVG(); err == nil {
		t.Fatal("mismatched bar chart accepted")
	}
	if _, err := (&BarChart{}).SVG(); err == nil {
		t.Fatal("empty bar chart accepted")
	}
}

func TestLineChartSVG(t *testing.T) {
	c := LineChart{
		Title: "Fig 5", XLabel: "clusters", YLabel: "coverage", YMax: 1,
		Series: []Series{
			{Name: "s1", X: []float64{1, 2, 3}, Y: []float64{0.2, 0.5, 0.9}},
			{Name: "s2", X: []float64{1, 2, 3}, Y: []float64{0.5, 0.8, 1}},
		},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 5", "polyline", "s1", "s2"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("line chart missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Fatalf("line chart has %d polylines, want 2", got)
	}
}

func TestLineChartValidation(t *testing.T) {
	if _, err := (&LineChart{}).SVG(); err == nil {
		t.Fatal("empty line chart accepted")
	}
	bad := LineChart{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := bad.SVG(); err == nil {
		t.Fatal("ragged series accepted")
	}
	empty := LineChart{Series: []Series{{Name: "s"}}}
	if _, err := empty.SVG(); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestGridSVG(t *testing.T) {
	cell := Cell{
		Kiviat: Kiviat{Title: "w", Axes: sampleAxes(), Values: []float64{0.1, 1, 0, 10}},
		Pie:    Pie{Slices: []Slice{{Label: "x", Fraction: 1}}},
		Note:   []string{"x: 50% of benchmark"},
	}
	g := Grid{Title: "Figures 2-3", Columns: 2, Cells: []Cell{cell, cell, cell}}
	svg, err := g.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "Figures 2-3") || strings.Count(svg, "<g transform") != 6 {
		t.Fatalf("grid SVG malformed (transforms=%d)", strings.Count(svg, "<g transform"))
	}
	// Nested fragments must not contain nested <svg> elements.
	if strings.Count(svg, "<svg") != 1 {
		t.Fatalf("grid contains nested <svg> elements")
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := (&Grid{}).SVG(); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Fatalf("escape = %q", got)
	}
}

func TestDendrogramSVG(t *testing.T) {
	d := Dendrogram{
		Title:  "tree",
		Labels: []string{"a", "b", "c"},
		Merges: []DendroMerge{
			{A: 0, B: 1, Distance: 1},
			{A: 3, B: 2, Distance: 4},
		},
		LeafOrder: []int{0, 1, 2},
	}
	svg, err := d.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "tree", ">a<", ">c<", "<path"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("dendrogram missing %q", want)
		}
	}
	if got := strings.Count(svg, "<path"); got != 2 {
		t.Fatalf("dendrogram has %d connectors, want 2", got)
	}
}

func TestDendrogramValidation(t *testing.T) {
	if _, err := (&Dendrogram{Labels: []string{"a"}}).SVG(); err == nil {
		t.Fatal("single-leaf dendrogram accepted")
	}
	bad := Dendrogram{Labels: []string{"a", "b"}, Merges: nil}
	if _, err := bad.SVG(); err == nil {
		t.Fatal("missing merges accepted")
	}
	badMerge := Dendrogram{
		Labels: []string{"a", "b"},
		Merges: []DendroMerge{{A: 0, B: 9, Distance: 1}},
	}
	if _, err := badMerge.SVG(); err == nil {
		t.Fatal("invalid merge node accepted")
	}
	badOrder := Dendrogram{
		Labels:    []string{"a", "b"},
		Merges:    []DendroMerge{{A: 0, B: 1, Distance: 1}},
		LeafOrder: []int{0},
	}
	if _, err := badOrder.SVG(); err == nil {
		t.Fatal("short leaf order accepted")
	}
}

func TestDendrogramDefaultOrder(t *testing.T) {
	d := Dendrogram{
		Labels: []string{"a", "b"},
		Merges: []DendroMerge{{A: 0, B: 1, Distance: 2}},
	}
	if _, err := d.SVG(); err != nil {
		t.Fatalf("default leaf order rejected: %v", err)
	}
}

func TestBarChartASCII(t *testing.T) {
	c := BarChart{Title: "cov", Labels: []string{"A", "BB"}, Values: []float64{10, 20}}
	out, err := c.ASCII(20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cov") || !strings.Contains(out, "####") {
		t.Fatalf("bar ASCII malformed:\n%s", out)
	}
	// The longer bar must be twice the short one.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	a := strings.Count(lines[1], "#")
	b := strings.Count(lines[2], "#")
	if b != 2*a {
		t.Fatalf("bar proportions wrong: %d vs %d", a, b)
	}
	if _, err := (&BarChart{Labels: []string{"x"}}).ASCII(20); err == nil {
		t.Fatal("mismatched bar ASCII accepted")
	}
}

func TestLineChartASCII(t *testing.T) {
	c := LineChart{
		Title: "curve", YMax: 1,
		Series: []Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.5, 1.0}}},
	}
	out, err := c.ASCII(24)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "curve") || !strings.Contains(out, "|") {
		t.Fatalf("line ASCII malformed:\n%s", out)
	}
	if _, err := (&LineChart{}).ASCII(20); err == nil {
		t.Fatal("empty line ASCII accepted")
	}
	bad := LineChart{Series: []Series{{Name: "s"}}}
	if _, err := bad.ASCII(20); err == nil {
		t.Fatal("empty series ASCII accepted")
	}
}
