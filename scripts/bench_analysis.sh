#!/bin/sh
# Benchmark the parallelized analysis stages and record the numbers in
# BENCH_analysis.json at the repo root, plus an instrumented quick-pipeline
# run report (stage spans + cache/worker counters) in
# BENCH_analysis_report.json beside it.
#
# Usage: scripts/bench_analysis.sh [benchtime]
#
# The recorded benchmarks are the parallel kernels introduced with the
# worker-pool refactor (k-means restarts/assignment, GA fitness batches,
# SelectK sweeps) plus the end-to-end pipeline and the GA sweep figure,
# each at workers=1 and workers=GOMAXPROCS (the sub-benchmarks collapse
# to a single workers=1 entry on single-core machines), and the
# measurement kernel itself: BenchmarkCharacterize (cold generate+measure,
# ns/instruction and instructions/s) and BenchmarkCharacterizeCached (the
# same run served entirely from a warm interval-vector cache), and the
# incremental engine: BenchmarkCharacterizeAppend prices a one-benchmark
# append onto a cached baseline (delta characterize + frozen-basis PCA +
# warm-started k-means) against the cold full-roster control as an
# interleaved pair. All of them produce byte-identical results at any
# worker count and cache state, so the comparison is pure wall-clock.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2x}"
OUT="BENCH_analysis.json"
RAW="$(mktemp)"
PREV="$(mktemp)"
trap 'rm -f "$RAW" "$PREV"' EXIT

# Keep the previous recorded numbers so the refresh can print paired
# old/new deltas at the end.
[ -f "$OUT" ] && cp "$OUT" "$PREV"

go test -run '^$' \
    -bench 'BenchmarkKMeansParallel|BenchmarkGAFitnessParallel|BenchmarkSelectKSweep|BenchmarkFullPipeline$|BenchmarkFig1GASweep|BenchmarkCharacterize$|BenchmarkCharacterizeCached$|BenchmarkCharacterizeAppend|BenchmarkCorpusQuery' \
    -benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
/^goos:/    { goos = $2 }
/^goarch:/  { goarch = $2 }
/^cpu:/     { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    n = $2
    ns = $3
    extras = ""
    # Fields arrive as value/unit pairs after "ns/op".
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/"/, "", unit)
        extras = extras sprintf(", \"%s\": %s", unit, $i)
    }
    rows[++count] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s%s}",
                            name, n, ns, extras)
}
END {
    printf "{\n"
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"notes\": \"BenchmarkCharacterize is the cold generate+measure kernel; BenchmarkCharacterizeCached is the same run served warm (in-process dataset memo over the interval-vector cache). Against the pre-kernel tree (commit ff7388c), interleaved paired binaries on this shared vCPU measured: KMeansParallel/workers=1 paired-median 3.3x (range 3.1-3.4x; AVX2 column-scan nearest-center kernel + Hamerly-style bounds + pooled scratch), Fig1GASweep paired-median 4.7x (range 4.1-6.7x; dataset memo removes the repeated trace substrate, ~22%% Jacobi now flat+workspaced, GA fitness on pooled PCA workspaces), CharacterizeCached ~55x ns/op and ~107x B/op (2.06 MB -> 19 kB, 16334 -> 2 allocs/op). Fig1 decomposition pre-memo: ~65%% trace substrate, ~22%% JacobiEigen. BenchmarkCharacterizeAppend/{cold,incremental} is an interleaved pair: incremental restores an N-1 baseline off the clock, then times a true one-benchmark append; the reported delta-stages (want 4) and reused-rows prove the fast path ran instead of silently falling back cold. All paths stay byte-identical at every worker count; the asm and generic column kernels are bit-identical by construction (serial per-center sums, lanes across centers).\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= count; i++)
        printf "%s%s\n", rows[i], (i < count ? "," : "")
    printf "  ]\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"

# Paired old/new deltas against the previously recorded numbers: one
# line per benchmark present in both files. Ratios > 1 are speedups.
# These are same-machine but not interleaved runs — treat them as a
# smoke signal and use interleaved paired binaries for publishable
# comparisons (see the notes field).
if [ -s "$PREV" ]; then
    echo "== deltas vs previous $OUT"
    awk '
    /"name":/ {
        name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[^0-9].*/, "", ns)
        if (NR == FNR) { old[name] = ns }
        else if (name in old && ns > 0)
            printf "  %-45s %14.0f -> %14.0f ns/op  (%.2fx)\n", name, old[name], ns, old[name] / ns
    }' "$PREV" "$OUT"
fi

# Capture a run report for the same machine: where the quick pipeline's
# wall time actually goes (per-stage spans, worker-pool and cache
# counters). The pipeline output itself is discarded — only the report
# matters here.
REPORT="BENCH_analysis_report.json"
go run ./cmd/phasechar -quick -quiet -report "$REPORT" export > /dev/null
echo "wrote $REPORT"
