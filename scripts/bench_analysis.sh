#!/bin/sh
# Benchmark the parallelized analysis stages and record the numbers in
# BENCH_analysis.json at the repo root, plus an instrumented quick-pipeline
# run report (stage spans + cache/worker counters) in
# BENCH_analysis_report.json beside it.
#
# Usage: scripts/bench_analysis.sh [benchtime]
#
# The recorded benchmarks are the parallel kernels introduced with the
# worker-pool refactor (k-means restarts/assignment, GA fitness batches,
# SelectK sweeps) plus the end-to-end pipeline and the GA sweep figure,
# each at workers=1 and workers=GOMAXPROCS (the sub-benchmarks collapse
# to a single workers=1 entry on single-core machines), and the
# measurement kernel itself: BenchmarkCharacterize (cold generate+measure,
# ns/instruction and instructions/s) and BenchmarkCharacterizeCached (the
# same run served entirely from a warm interval-vector cache). All of them
# produce byte-identical results at any worker count and cache state, so
# the comparison is pure wall-clock.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2x}"
OUT="BENCH_analysis.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
    -bench 'BenchmarkKMeansParallel|BenchmarkGAFitnessParallel|BenchmarkSelectKSweep|BenchmarkFullPipeline$|BenchmarkFig1GASweep|BenchmarkCharacterize$|BenchmarkCharacterizeCached$' \
    -benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
/^goos:/    { goos = $2 }
/^goarch:/  { goarch = $2 }
/^cpu:/     { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    n = $2
    ns = $3
    extras = ""
    # Fields arrive as value/unit pairs after "ns/op".
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/"/, "", unit)
        extras = extras sprintf(", \"%s\": %s", unit, $i)
    }
    rows[++count] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s%s}",
                            name, n, ns, extras)
}
END {
    printf "{\n"
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"notes\": \"BenchmarkCharacterize is the cold generate+measure kernel; BenchmarkCharacterizeCached is the same run served from a warm interval-vector cache. Against the pre-batching kernel (commit b0d6d0d), interleaved paired runs on this shared vCPU measured a paired-median ~1.5-1.65x cold throughput (pairwise range 1.3-1.9x; the machine itself drifts ~30%% between runs) and ~60-70x cache-warm.\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= count; i++)
        printf "%s%s\n", rows[i], (i < count ? "," : "")
    printf "  ]\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"

# Capture a run report for the same machine: where the quick pipeline's
# wall time actually goes (per-stage spans, worker-pool and cache
# counters). The pipeline output itself is discarded — only the report
# matters here.
REPORT="BENCH_analysis_report.json"
go run ./cmd/phasechar -quick -quiet -report "$REPORT" export > /dev/null
echo "wrote $REPORT"
