#!/bin/sh
# Repo verification gate: build, vet, the full test suite, and the race
# detector over every package that spawns goroutines (the worker pool and
# the analysis stages driven through it). Run before every merge.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./... (tier-1)"
go test ./...

echo "== go test -race (concurrent analysis stages)"
go test -race -count=1 \
    ./internal/par/ \
    ./internal/cluster/ \
    ./internal/ga/ \
    ./internal/stats/ \
    ./internal/core/

echo "verify: OK"
