#!/bin/sh
# Repo verification gate: build, vet, the full test suite, the race
# detector over every package, and the shard-merge/resume equivalence
# check on the quick pipeline. Run before every merge.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./... (tier-1)"
go test ./...

echo "== go test -race ./..."
go test -race -count=1 ./...

echo "== shard-merge + resume equivalence (quick pipeline)"
# The engine's load-bearing invariant, end to end through the CLI: a
# 3-shard characterization merged by the analysis run, and a resumed
# rerun over the same cache, must both export byte-identically to the
# plain single-process run.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/phasechar" ./cmd/phasechar
"$tmp/phasechar" -quick -quiet export > "$tmp/single.json"
for i in 0 1 2; do
  "$tmp/phasechar" -quick -quiet -cache "$tmp/cache" -shard "$i/3" shard > /dev/null
done
"$tmp/phasechar" -quick -quiet -cache "$tmp/cache" -merge 3 export > "$tmp/merged.json"
cmp "$tmp/single.json" "$tmp/merged.json"
"$tmp/phasechar" -quick -quiet -cache "$tmp/cache" -resume export > "$tmp/resumed.json"
cmp "$tmp/single.json" "$tmp/resumed.json"

echo "verify: OK"
