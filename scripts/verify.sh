#!/bin/sh
# Repo verification gate: build, vet, the full test suite, and the race
# detector over every package. Run before every merge.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./... (tier-1)"
go test ./...

echo "== go test -race ./..."
go test -race -count=1 ./...

echo "verify: OK"
