#!/bin/sh
# Repo verification gate: build, vet, the full test suite, the race
# detector over every package, short fuzz runs over every binary
# decoder, the shard-merge/resume equivalence check on the quick
# pipeline, the incremental append byte-identity gate, the distributed
# loopback gate (networked workers with injected faults and a mid-run
# worker kill), the workload-model round-trip gate (the roster exported
# as declarative model files and reloaded runs byte-identically, and the
# checked-in emerging-era suites load and analyze), and the
# characterization-service loopback gate (jobs over HTTP byte-identical
# to one-shot exports — including jobs shipping inline tenant models —
# cold and hot-warm, with backpressure and latency histograms), and the
# phase-corpus gate (a six-suite corpus built through the CLI answers
# queries byte-identically to the checked-in goldens, across worker
# counts, across compaction, and over the service front door). Run
# before every merge.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
WORKER_PIDS=""
cleanup() {
  # Force-kill and reap before removing the tree: a gracefully draining
  # service would otherwise still be writing cache files under $tmp
  # while rm -rf walks it.
  if [ -n "$WORKER_PIDS" ]; then
    # shellcheck disable=SC2086
    kill -9 $WORKER_PIDS 2>/dev/null || true
    # shellcheck disable=SC2086
    wait $WORKER_PIDS 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./... (tier-1)"
go test ./...

echo "== go test -race ./..."
go test -race -count=1 ./...

echo "== shardnet -race at pinned worker counts"
# The distributed invariant must hold at any compute parallelism; pin it
# at serial and at 4 workers explicitly.
SHARDNET_TEST_WORKERS=1 go test -race -count=1 ./internal/shardnet/
SHARDNET_TEST_WORKERS=4 go test -race -count=1 ./internal/shardnet/

echo "== fuzz decoders (${FUZZ_BUDGET:-2s} each)"
# Every decoder that reads bytes from disk or the network: errors, never
# panics. FUZZ_BUDGET raises the per-target budget for deeper local runs.
while read -r target pkg; do
  go test -run='^$' -fuzz="^${target}\$" -fuzztime="${FUZZ_BUDGET:-2s}" "$pkg" > /dev/null
done <<'EOF'
FuzzDecodeMatrix ./internal/stats/
FuzzDecodePCA ./internal/stats/
FuzzDecodeResult ./internal/cluster/
FuzzShardArtifact ./internal/core/
FuzzSummaryArtifact ./internal/core/
FuzzTimelineArtifact ./internal/core/
FuzzShardRequest ./internal/shardnet/
FuzzShardResponse ./internal/shardnet/
FuzzDecodeModels ./internal/bench/
FuzzCorpusSegment ./internal/corpus/
FuzzCorpusManifest ./internal/corpus/
EOF

echo "== allocation gate (BenchmarkCharacterizeCached)"
# The cache-warm characterization path is pinned to a per-op allocation
# ceiling: the kernel/memo work brought it to single-digit allocs/op, and
# a regression back toward the historical ~7k allocs/op should fail the
# gate loudly. CHAR_CACHED_ALLOC_CEILING overrides the ceiling (e.g. for
# instrumented builds).
ALLOC_CEILING="${CHAR_CACHED_ALLOC_CEILING:-512}"
allocs="$(go test -run '^$' -bench 'BenchmarkCharacterizeCached$' -benchtime 2x -benchmem . |
  awk '/^BenchmarkCharacterizeCached/ { for (i = 1; i < NF; i++) if ($(i + 1) == "allocs/op") print $i }')"
if [ -z "$allocs" ]; then
  echo "allocation gate: BenchmarkCharacterizeCached produced no allocs/op figure" >&2
  exit 1
fi
if [ "$allocs" -gt "$ALLOC_CEILING" ]; then
  echo "allocation gate: BenchmarkCharacterizeCached allocates $allocs/op > ceiling $ALLOC_CEILING" >&2
  exit 1
fi
echo "allocation gate: $allocs allocs/op <= $ALLOC_CEILING"

echo "== shard-merge + resume equivalence (quick pipeline)"
# The engine's load-bearing invariant, end to end through the CLI: a
# 3-shard characterization merged by the analysis run, and a resumed
# rerun over the same cache, must both export byte-identically to the
# plain single-process run.
go build -o "$tmp/phasechar" ./cmd/phasechar
"$tmp/phasechar" -quick -quiet export > "$tmp/single.json"
for i in 0 1 2; do
  "$tmp/phasechar" -quick -quiet -cache "$tmp/cache" -shard "$i/3" shard > /dev/null
done
"$tmp/phasechar" -quick -quiet -cache "$tmp/cache" -merge 3 export > "$tmp/merged.json"
cmp "$tmp/single.json" "$tmp/merged.json"
"$tmp/phasechar" -quick -quiet -cache "$tmp/cache" -resume export > "$tmp/resumed.json"
cmp "$tmp/single.json" "$tmp/resumed.json"

echo "== workload-model round-trip gate"
# Suites as data, end to end through the CLI: the built-in roster
# exported as a declarative model file and reloaded via -models must run
# byte-identically to the built-in run — the codec loses nothing. The
# checked-in emerging-era suites must load, validate, and surface in the
# cross-era experiment.
"$tmp/phasechar" -export-models > "$tmp/models_std.json"
"$tmp/phasechar" -quick -quiet -models "$tmp/models_std.json" export > "$tmp/models_reloaded.json"
cmp "$tmp/single.json" "$tmp/models_reloaded.json"
"$tmp/phasechar" -quick -quiet -models models -clusters 80 -prominent 30 crossera > "$tmp/crossera.out"
if ! grep -q "BigData" "$tmp/crossera.out"; then
  echo "model gate: crossera output does not mention the BigData suite" >&2
  cat "$tmp/crossera.out" >&2
  exit 1
fi

echo "== incremental append gate (quick pipeline)"
# The incremental engine's golden invariant, end to end through the CLI:
# a baseline over six suites, then a full-roster append with the
# approximation thresholds at zero, must export byte-identically to the
# plain single-process run — and the run report must prove the delta
# characterize path actually ran (rather than silently recomputing cold).
"$tmp/phasechar" -quick -quiet -cache "$tmp/icache" -incremental \
  -suites BioPerf,BMW,MediaBenchII,SPECint2000,SPECfp2000,SPECint2006 export > /dev/null
"$tmp/phasechar" -quick -quiet -cache "$tmp/icache" -incremental \
  -max-pca-drift 0 -max-centroid-shift 0 \
  -report "$tmp/inc_report.json" export > "$tmp/incremental.json"
cmp "$tmp/single.json" "$tmp/incremental.json"
if ! grep -Fq '"engine.delta.characterize": 1' "$tmp/inc_report.json"; then
  echo "incremental gate: append run did not take the delta characterize path" >&2
  grep -F '"engine.' "$tmp/inc_report.json" >&2 || true
  exit 1
fi

echo "== distributed loopback gate (3 workers, injected faults, mid-run kill)"
# The same invariant across real process and network boundaries: three
# loopback shard servers, a fault schedule (a 503 then a corrupted frame
# on worker 0, injected latency on worker 2), and worker 1 killed while
# the run is in flight. The coordinator must retry, reassign and degrade
# as needed — and the export must still be byte-identical.
for i in 0 1 2; do
  "$tmp/phasechar" -quiet -addr 127.0.0.1:0 serve > "$tmp/worker$i.out" 2>&1 &
  WORKER_PIDS="$WORKER_PIDS $!"
done
addrs=""
for i in 0 1 2; do
  addr=""
  tries=0
  while [ -z "$addr" ]; do
    addr="$(sed -n 's|^phasechar: listening at http://||p' "$tmp/worker$i.out")"
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
      echo "worker $i never reported its address" >&2
      cat "$tmp/worker$i.out" >&2
      exit 1
    fi
    [ -z "$addr" ] && sleep 0.1
  done
  addrs="$addrs,$addr"
done
addrs="${addrs#,}"
victim="$(echo "$WORKER_PIDS" | awk '{print $2}')"
( sleep 1; kill "$victim" 2>/dev/null ) &
"$tmp/phasechar" -quick -quiet -cache "$tmp/dcache" \
  -workers-addr "$addrs" -merge 6 -rpc-retries 2 \
  -rpc-faults "0:5xx,corrupt;2:delay" \
  -report distributed_report.json export > "$tmp/distributed.json"
cmp "$tmp/single.json" "$tmp/distributed.json"

echo "== characterization service loopback gate"
# The service's contract, end to end through the CLI: a job submitted
# over HTTP must export byte-identically to the equivalent one-shot run
# — cold, through an incremental append, and again hot-warm out of the
# in-memory tier — while the front door sheds load with 429s at queue
# capacity and reports per-endpoint latency percentiles in /metrics.
six="BioPerf,BMW,MediaBenchII,SPECint2000,SPECfp2000,SPECint2006"
"$tmp/phasechar" -quick -quiet -suites "$six" export > "$tmp/six.json"
"$tmp/phasechar" -cache "$tmp/scache" -addr 127.0.0.1:0 \
  -queue-depth 1 -job-workers 1 service > "$tmp/service.out" 2>&1 &
WORKER_PIDS="$WORKER_PIDS $!"
saddr=""
tries=0
while [ -z "$saddr" ]; do
  saddr="$(sed -n 's|^phasechar: characterization service at http://||p' "$tmp/service.out")"
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "service never reported its address" >&2
    cat "$tmp/service.out" >&2
    exit 1
  fi
  [ -z "$saddr" ] && sleep 0.1
done
# Cold six-suite job (records the incremental baseline server-side).
"$tmp/phasechar" -server "http://$saddr" -tenant gate -quick -quiet \
  -incremental -suites "$six" submit > "$tmp/svc_six.json"
cmp "$tmp/six.json" "$tmp/svc_six.json"
# Incremental append over the full roster, through the front door.
"$tmp/phasechar" -server "http://$saddr" -tenant gate -quick -quiet \
  -incremental -max-pca-drift 0 -max-centroid-shift 0 submit > "$tmp/svc_full.json"
cmp "$tmp/single.json" "$tmp/svc_full.json"
# Hot-warm repeat: same job again, answered from cached artifacts (and
# the in-memory tier) — still byte-identical.
"$tmp/phasechar" -server "http://$saddr" -tenant gate -quick -quiet \
  -incremental -suites "$six" submit > "$tmp/svc_six_warm.json"
cmp "$tmp/six.json" "$tmp/svc_six_warm.json"
# Inline tenant models: a job shipping the emerging-era suite inline
# must export byte-identically to the same roster run locally via
# -models (invalid models are covered by the serve tests: 400 at submit).
"$tmp/phasechar" -quick -quiet -models models -suites BigData \
  -clusters 40 -prominent 20 export > "$tmp/bigdata.json"
"$tmp/phasechar" -server "http://$saddr" -tenant gate -quick -quiet \
  -models models -suites BigData -clusters 40 -prominent 20 submit > "$tmp/svc_bigdata.json"
cmp "$tmp/bigdata.json" "$tmp/svc_bigdata.json"
# Saturation: with one worker pinned by a cold job and one queue slot,
# a burst of submissions must see at least one 429.
flood_codes=""
for i in 1 2 3 4 5 6; do
  flood_codes="$flood_codes $(curl -s -o /dev/null -w '%{http_code}' \
    -X POST -H 'X-Tenant: flood' -H 'Content-Type: application/json' \
    -d '{"preset":"quick","seed":7}' "http://$saddr/jobs")"
done
case "$flood_codes" in
  *429*) echo "service gate: backpressure observed ($flood_codes)" ;;
  *)
    echo "service gate: no 429 under queue saturation ($flood_codes)" >&2
    exit 1
    ;;
esac
curl -s "http://$saddr/metrics" > "$tmp/service_metrics.json"
python3 - "$tmp/service_metrics.json" <<'EOF'
import json, sys

rep = json.load(open(sys.argv[1]))
c = rep["counters"]
assert c.get("fcache.hot_hits", 0) > 0, f"no hot-tier hits in report: {c}"
assert c.get("serve.admission_rejects", 0) > 0, "no admission rejects recorded"
assert c.get("serve.jobs_done", 0) >= 3, f"jobs_done = {c.get('serve.jobs_done')}"
h = rep.get("histograms", {})
post = h.get("serve.http.post_jobs")
assert post and post["count"] > 0, f"missing post_jobs histogram: {sorted(h)}"
for k in ("p50_seconds", "p95_seconds", "p99_seconds"):
    assert k in post, f"{k} missing from histogram summary"
assert post["p50_seconds"] <= post["p95_seconds"] <= post["p99_seconds"] <= post["max_seconds"] + 1e-12
print("service gate: hot hits =", c["fcache.hot_hits"],
      "| post_jobs p50/p95/p99 =", post["p50_seconds"], post["p95_seconds"], post["p99_seconds"])
EOF

echo "== phase corpus gate (six-suite corpus, online queries)"
# The corpus contract end to end: a six-suite quick run ingested into a
# fresh corpus must answer queries byte-identically to the checked-in
# goldens; re-ingesting the same run is a no-op; a corpus built at
# -workers 1 answers identically; compaction changes no answer; the
# corpus.* counters surface in the run report; and the service's
# POST /corpus/query returns the same bytes as the CLI.
corpus="$tmp/corpus"
"$tmp/phasechar" -quick -quiet -suites "$six" -corpus "$corpus" \
  -report "$tmp/corpus_report.json" export > /dev/null
"$tmp/phasechar" -corpus "$corpus" query stats > "$tmp/corpus_stats.json"
cmp scripts/testdata/corpus_six_stats.json "$tmp/corpus_stats.json"
"$tmp/phasechar" -corpus "$corpus" -topk 3 query nearest 'BioPerf/blast#3' > "$tmp/corpus_near.json"
cmp scripts/testdata/corpus_six_nearest.json "$tmp/corpus_near.json"
# Idempotent re-ingest: an equivalent rerun adds nothing.
"$tmp/phasechar" -quick -quiet -suites "$six" -corpus "$corpus" export > /dev/null
"$tmp/phasechar" -corpus "$corpus" query stats | cmp scripts/testdata/corpus_six_stats.json -
# Worker-count invariance: the corpus is the same corpus at any -workers.
"$tmp/phasechar" -quick -quiet -suites "$six" -workers 1 -corpus "$tmp/corpus_w1" export > /dev/null
"$tmp/phasechar" -corpus "$tmp/corpus_w1" -topk 3 query nearest 'BioPerf/blast#3' |
  cmp scripts/testdata/corpus_six_nearest.json -
# A second ingest (the emerging-era suite) then compaction: two segments
# merge into one and every answer survives byte-identically.
"$tmp/phasechar" -quick -quiet -models models -suites BigData \
  -clusters 40 -prominent 20 -corpus "$corpus" export > /dev/null
"$tmp/phasechar" -corpus "$corpus" -topk 5 query nearest 'BioPerf/blast#3' > "$tmp/corpus_pre_near.json"
"$tmp/phasechar" -corpus "$corpus" query uniqueness BioPerf/blast > "$tmp/corpus_pre_uniq.json"
"$tmp/phasechar" -corpus "$corpus" query novelty BigData > "$tmp/corpus_pre_nov.json"
"$tmp/phasechar" -corpus "$corpus" compact
"$tmp/phasechar" -corpus "$corpus" -topk 5 query nearest 'BioPerf/blast#3' | cmp "$tmp/corpus_pre_near.json" -
"$tmp/phasechar" -corpus "$corpus" query uniqueness BioPerf/blast | cmp "$tmp/corpus_pre_uniq.json" -
"$tmp/phasechar" -corpus "$corpus" query novelty BigData | cmp "$tmp/corpus_pre_nov.json" -
# The run report carries the corpus counters.
python3 - "$tmp/corpus_report.json" <<'EOF'
import json, sys

c = json.load(open(sys.argv[1]))["counters"]
assert c.get("corpus.ingested", 0) > 0, f"no corpus.ingested in report: {sorted(c)}"
assert c.get("corpus.segments", 0) == 1, f"corpus.segments = {c.get('corpus.segments')}"
print("corpus gate: ingested", c["corpus.ingested"], "records into", c["corpus.segments"], "segment")
EOF
# The service answers the same question with the same bytes.
"$tmp/phasechar" -cache "$tmp/qcache" -corpus "$corpus" -addr 127.0.0.1:0 \
  service > "$tmp/corpus_service.out" 2>&1 &
WORKER_PIDS="$WORKER_PIDS $!"
qaddr=""
tries=0
while [ -z "$qaddr" ]; do
  qaddr="$(sed -n 's|^phasechar: characterization service at http://||p' "$tmp/corpus_service.out")"
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "corpus service never reported its address" >&2
    cat "$tmp/corpus_service.out" >&2
    exit 1
  fi
  [ -z "$qaddr" ] && sleep 0.1
done
curl -s -X POST -H 'Content-Type: application/json' \
  -d '{"op":"nearest","ref":"BioPerf/blast#3","k":5}' \
  "http://$qaddr/corpus/query" | cmp "$tmp/corpus_pre_near.json" -
echo "corpus gate: CLI and service answers byte-identical"

echo "verify: OK"
